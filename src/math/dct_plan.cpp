#include "math/dct_plan.hpp"

#include <cmath>
#include <numbers>

#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace qplacer {

namespace {

using Complex = Fft::Complex;

constexpr double kPi = std::numbers::pi;

} // namespace

void
DctScratch::ensure(int lanes)
{
    if (lanes > DctScratch::lanes())
        lanes_.resize(static_cast<std::size_t>(lanes));
}

DctPlan::DctPlan(std::size_t n) : n_(n), fft_(n)
{
    // (fft_ already rejected non-power-of-two lengths.)
    fwdTwiddle_.resize(n);
    invTwiddle_.resize(n);
    for (std::size_t k = 0; k < n; ++k) {
        const double ang = kPi * static_cast<double>(k) /
                           (2.0 * static_cast<double>(n));
        // Same cos/sin evaluations as Dct::dct2 / Dct::idct2.
        fwdTwiddle_[k] = Complex(std::cos(-ang), std::sin(-ang));
        invTwiddle_[k] = Complex(std::cos(ang), std::sin(ang));
    }
}

void
DctPlan::dct2(double *x, DctScratch::Lane &lane) const
{
    const std::size_t n = n_;
    std::vector<Complex> &v = lane.spectrum;
    v.resize(n);

    // Makhoul reordering: even samples ascending, odd samples
    // descending (every element of v is written).
    const std::size_t half = (n + 1) / 2;
    for (std::size_t m = 0; m < half; ++m)
        v[m] = Complex(x[2 * m], 0.0);
    for (std::size_t m = 0; 2 * m + 1 < n; ++m)
        v[n - 1 - m] = Complex(x[2 * m + 1], 0.0);

    fft_.forward(v.data());

    for (std::size_t k = 0; k < n; ++k)
        x[k] = (fwdTwiddle_[k] * v[k]).real();
}

void
DctPlan::idct2(double *x, DctScratch::Lane &lane) const
{
    const std::size_t n = n_;
    std::vector<Complex> &v = lane.spectrum;
    v.resize(n);

    // Reconstruct the complex spectrum P[k] = X[k] - i*X[n-k], undo
    // the twiddle, invert the FFT, and undo the reordering. All of x
    // is read before any of it is rewritten below.
    for (std::size_t k = 0; k < n; ++k) {
        const double re = x[k];
        const double im = (k == 0) ? 0.0 : -x[n - k];
        v[k] = invTwiddle_[k] * Complex(re, im);
    }

    fft_.inverse(v.data());

    const std::size_t half = (n + 1) / 2;
    for (std::size_t m = 0; m < half; ++m)
        x[2 * m] = v[m].real();
    for (std::size_t m = 0; 2 * m + 1 < n; ++m)
        x[2 * m + 1] = v[n - 1 - m].real();
}

void
DctPlan::cosSeries(double *x, DctScratch::Lane &lane) const
{
    // y[n] = c[0] + 2*sum_{k>=1} c[k] cos(...) == N * idct2(c).
    const double scale = static_cast<double>(n_);
    idct2(x, lane);
    for (std::size_t i = 0; i < n_; ++i)
        x[i] *= scale;
}

void
DctPlan::sinSeries(double *x, DctScratch::Lane &lane) const
{
    // sin(pi*(n+0.5)*k/N) == (-1)^n cos(pi*(n+0.5)*(N-k)/N): a cosine
    // series with reversed coefficients and an alternating sign.
    const std::size_t n = n_;
    std::vector<double> &flipped = lane.flip;
    flipped.resize(n);
    flipped[0] = 0.0;
    for (std::size_t k = 1; k < n; ++k)
        flipped[k] = x[n - k];
    cosSeries(flipped.data(), lane);
    x[0] = flipped[0];
    for (std::size_t i = 1; i < n; ++i)
        x[i] = (i % 2 == 1) ? -flipped[i] : flipped[i];
}

void
DctPlan::apply(Kind kind, double *x, DctScratch::Lane &lane) const
{
    switch (kind) {
      case Kind::Dct2:
        return dct2(x, lane);
      case Kind::Idct2:
        return idct2(x, lane);
      case Kind::CosSeries:
        return cosSeries(x, lane);
      case Kind::SinSeries:
        return sinSeries(x, lane);
    }
    panic("DctPlan::apply: bad kind");
}

void
DctPlan::transformRows(std::vector<double> &map, int nx, int ny,
                       Kind kind, ThreadPool *pool,
                       DctScratch &scratch) const
{
    if (map.size() != static_cast<std::size_t>(nx) * ny)
        panic(str("DctPlan::transformRows: map size ", map.size(),
                  " != ", nx, "x", ny));
    if (static_cast<std::size_t>(nx) != n_)
        panic(str("DctPlan::transformRows: row length ", nx,
                  " != plan length ", n_));
    scratch.ensure(parallelChunkCount(pool, static_cast<std::size_t>(ny),
                                      ThreadPool::kGrainCoarse));
    parallelForChunks(
        pool, static_cast<std::size_t>(ny),
        [&](int chunk, std::size_t begin, std::size_t end) {
            DctScratch::Lane &lane = scratch.lane(chunk);
            for (std::size_t iy = begin; iy < end; ++iy)
                apply(kind, map.data() + iy * nx, lane);
        },
        ThreadPool::kGrainCoarse);
}

void
DctPlan::transformCols(std::vector<double> &map, int nx, int ny,
                       Kind kind, ThreadPool *pool,
                       DctScratch &scratch) const
{
    if (map.size() != static_cast<std::size_t>(nx) * ny)
        panic(str("DctPlan::transformCols: map size ", map.size(),
                  " != ", nx, "x", ny));
    if (static_cast<std::size_t>(ny) != n_)
        panic(str("DctPlan::transformCols: column length ", ny,
                  " != plan length ", n_));
    scratch.ensure(parallelChunkCount(pool, static_cast<std::size_t>(nx),
                                      ThreadPool::kGrainCoarse));
    parallelForChunks(
        pool, static_cast<std::size_t>(nx),
        [&](int chunk, std::size_t begin, std::size_t end) {
            DctScratch::Lane &lane = scratch.lane(chunk);
            std::vector<double> &line = lane.line;
            line.resize(static_cast<std::size_t>(ny));
            for (std::size_t ix = begin; ix < end; ++ix) {
                for (int iy = 0; iy < ny; ++iy)
                    line[static_cast<std::size_t>(iy)] =
                        map[static_cast<std::size_t>(iy) * nx + ix];
                apply(kind, line.data(), lane);
                for (int iy = 0; iy < ny; ++iy)
                    map[static_cast<std::size_t>(iy) * nx + ix] =
                        line[static_cast<std::size_t>(iy)];
            }
        },
        ThreadPool::kGrainCoarse);
}

} // namespace qplacer
