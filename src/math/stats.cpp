#include "math/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace qplacer {

double
mean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double acc = 0.0;
    for (double x : v)
        acc += x;
    return acc / static_cast<double>(v.size());
}

double
geomean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double acc = 0.0;
    for (double x : v) {
        if (x <= 0.0)
            fatal("geomean: non-positive entry");
        acc += std::log(x);
    }
    return std::exp(acc / static_cast<double>(v.size()));
}

double
stddev(const std::vector<double> &v)
{
    if (v.size() < 2)
        return 0.0;
    const double m = mean(v);
    double acc = 0.0;
    for (double x : v)
        acc += (x - m) * (x - m);
    return std::sqrt(acc / static_cast<double>(v.size() - 1));
}

double
minOf(const std::vector<double> &v)
{
    if (v.empty())
        fatal("minOf: empty input");
    return *std::min_element(v.begin(), v.end());
}

double
maxOf(const std::vector<double> &v)
{
    if (v.empty())
        fatal("maxOf: empty input");
    return *std::max_element(v.begin(), v.end());
}

double
median(std::vector<double> v)
{
    if (v.empty())
        fatal("median: empty input");
    std::sort(v.begin(), v.end());
    const std::size_t n = v.size();
    if (n % 2 == 1)
        return v[n / 2];
    return 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

} // namespace qplacer
