/**
 * @file
 * Precomputed execution plan for the DCT/DST kernels (FFTW-style).
 *
 * The static Dct kernels heap-allocate an FFT workspace and re-derive
 * the Makhoul twiddles on every call — once per row/column of every
 * 2-D pass of every Poisson solve. A DctPlan is built once per
 * transform length and holds:
 *
 *  - an FftPlan (bit-reversal pairs + per-stage FFT twiddles), and
 *  - the forward/inverse Makhoul post/pre-twiddles e^(+-i*pi*k/(2N)),
 *
 * while a DctScratch provides per-chunk reusable buffers so the
 * batched row/column passes transform in place without a single
 * allocation after warm-up. Every kernel is bitwise-identical to its
 * Dct:: counterpart (same operations, same order — only the transcend-
 * ental evaluations are hoisted to plan construction).
 *
 * Thread-safety: a plan is immutable and may be shared freely (see
 * PlanCache); a DctScratch must be owned by one transform call chain
 * at a time — the batched passes hand lane @c c to chunk @c c, which
 * keeps lanes race-free under the deterministic chunked parallel-for.
 */

#ifndef QPLACER_MATH_DCT_PLAN_HPP
#define QPLACER_MATH_DCT_PLAN_HPP

#include <vector>

#include "math/dct.hpp"
#include "math/fft_plan.hpp"

namespace qplacer {

class ThreadPool;

/** Reusable per-chunk workspaces for DctPlan execution. */
class DctScratch
{
  public:
    /** Buffers one executing chunk (thread) transforms through. */
    struct Lane
    {
        std::vector<Fft::Complex> spectrum; ///< FFT workspace.
        std::vector<double> line; ///< Column gather/scatter row.
        std::vector<double> flip; ///< sinSeries coefficient reversal.
    };

    /**
     * Grow to at least @p lanes lanes. Called by the batched passes
     * before entering the parallel region; buffers keep their capacity
     * across calls, so steady-state transforms allocate nothing.
     */
    void ensure(int lanes);

    /** Lane for chunk @p chunk (valid after ensure()). */
    Lane &lane(int chunk) { return lanes_[static_cast<std::size_t>(chunk)]; }

    /** Lanes currently available. */
    int lanes() const { return static_cast<int>(lanes_.size()); }

  private:
    std::vector<Lane> lanes_;
};

/** Plan for every Dct kernel at one transform length. */
class DctPlan
{
  public:
    using Kind = Dct::Kind;

    /** Build tables for length @p n (must be a power of two). */
    explicit DctPlan(std::size_t n);

    /** Transform length the plan was built for. */
    std::size_t length() const { return n_; }

    /**
     * Apply @p kind in place to x[0..length()), working through
     * @p lane. Bitwise-identical to Dct::apply on the same input.
     */
    void apply(Kind kind, double *x, DctScratch::Lane &lane) const;

    /**
     * Apply @p kind along every length-@p nx row of the row-major
     * @p ny x @p nx map (requires nx == length()), rows chunked
     * across @p pool (null = serial) with one scratch lane per chunk.
     * Bitwise-identical to Dct::transformRowsUnplanned for any thread
     * count.
     */
    void transformRows(std::vector<double> &map, int nx, int ny,
                       Kind kind, ThreadPool *pool,
                       DctScratch &scratch) const;

    /**
     * Column-wise counterpart (requires ny == length()); each chunk
     * gathers columns through its lane's reusable line buffer instead
     * of allocating per-column vectors.
     */
    void transformCols(std::vector<double> &map, int nx, int ny,
                       Kind kind, ThreadPool *pool,
                       DctScratch &scratch) const;

  private:
    void dct2(double *x, DctScratch::Lane &lane) const;
    void idct2(double *x, DctScratch::Lane &lane) const;
    void cosSeries(double *x, DctScratch::Lane &lane) const;
    void sinSeries(double *x, DctScratch::Lane &lane) const;

    std::size_t n_;
    FftPlan fft_;
    /** Forward Makhoul twiddles e^(-i*pi*k/(2N)), k = 0..N-1. */
    std::vector<Fft::Complex> fwdTwiddle_;
    /** Inverse Makhoul twiddles e^(+i*pi*k/(2N)). */
    std::vector<Fft::Complex> invTwiddle_;
};

} // namespace qplacer

#endif // QPLACER_MATH_DCT_PLAN_HPP
