/**
 * @file
 * Radix-2 complex FFT.
 *
 * Implemented from scratch (no external FFT dependency); used by the DCT/
 * DST transforms that back the spectral Poisson solver in the density
 * force (src/core/poisson).
 *
 * This is the plan-free reference kernel: it re-derives twiddles on
 * every call. The hot paths execute through FftPlan (math/fft_plan),
 * which precomputes the same tables once per length and is asserted
 * bitwise-identical to this implementation by the plan-equivalence
 * tests.
 */

#ifndef QPLACER_MATH_FFT_HPP
#define QPLACER_MATH_FFT_HPP

#include <complex>
#include <vector>

namespace qplacer {

/** In-place iterative radix-2 FFT over power-of-two-length data. */
class Fft
{
  public:
    using Complex = std::complex<double>;

    /**
     * Forward transform (no normalization):
     *   X[k] = sum_n x[n] exp(-2*pi*i*k*n/N).
     * @pre data.size() is a power of two.
     */
    static void forward(std::vector<Complex> &data);

    /**
     * Inverse transform with 1/N normalization so that
     * inverse(forward(x)) == x.
     */
    static void inverse(std::vector<Complex> &data);

    /** True if @p n is a power of two (and > 0). */
    static bool isPowerOfTwo(std::size_t n);

  private:
    static void transform(std::vector<Complex> &data, bool invert);
};

} // namespace qplacer

#endif // QPLACER_MATH_FFT_HPP
