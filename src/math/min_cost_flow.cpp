#include "math/min_cost_flow.hpp"

#include <algorithm>
#include <queue>

#include "util/logging.hpp"

namespace qplacer {

MinCostFlow::MinCostFlow(int num_nodes)
    : numNodes_(num_nodes), graph_(num_nodes)
{
    if (num_nodes <= 0)
        panic("MinCostFlow: non-positive node count");
}

void
MinCostFlow::reserveNode(int node, std::size_t degree)
{
    if (node < 0 || node >= numNodes_)
        panic(str("MinCostFlow::reserveNode: node out of range (", node,
                  ")"));
    graph_[node].reserve(degree);
}

int
MinCostFlow::addEdge(int from, int to, std::int64_t capacity,
                     std::int64_t cost)
{
    if (from < 0 || from >= numNodes_ || to < 0 || to >= numNodes_)
        panic(str("MinCostFlow::addEdge: node out of range (", from, ", ",
                  to, ")"));
    if (cost < 0)
        panic("MinCostFlow::addEdge: negative cost unsupported");
    const int fwd_slot = static_cast<int>(graph_[from].size());
    const int rev_slot = static_cast<int>(graph_[to].size());
    graph_[from].push_back(Edge{to, capacity, cost, rev_slot});
    graph_[to].push_back(Edge{from, 0, -cost, fwd_slot});
    edgeIndex_.emplace_back(from, fwd_slot);
    return static_cast<int>(edgeIndex_.size()) - 1;
}

bool
MinCostFlow::dijkstra(int source, int sink)
{
    dist_.assign(numNodes_, kInfinite);
    parent_.assign(numNodes_, {-1, -1});
    dist_[source] = 0;

    using Item = std::pair<std::int64_t, int>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
    heap.emplace(0, source);

    while (!heap.empty()) {
        const auto [d, u] = heap.top();
        heap.pop();
        if (d > dist_[u])
            continue;
        for (int slot = 0; slot < static_cast<int>(graph_[u].size());
             ++slot) {
            const Edge &e = graph_[u][slot];
            if (e.capacity <= 0)
                continue;
            const std::int64_t reduced =
                e.cost + potential_[u] - potential_[e.to];
            const std::int64_t nd = d + reduced;
            if (nd < dist_[e.to]) {
                dist_[e.to] = nd;
                parent_[e.to] = {u, slot};
                heap.emplace(nd, e.to);
            }
        }
    }
    return dist_[sink] < kInfinite;
}

MinCostFlow::Result
MinCostFlow::solve(int source, int sink, std::int64_t max_flow)
{
    potential_.assign(numNodes_, 0);
    Result result;

    while (result.flow < max_flow && dijkstra(source, sink)) {
        for (int v = 0; v < numNodes_; ++v) {
            if (dist_[v] < kInfinite)
                potential_[v] += dist_[v];
        }

        // Bottleneck along the augmenting path.
        std::int64_t push = max_flow - result.flow;
        for (int v = sink; v != source;) {
            const auto [u, slot] = parent_[v];
            push = std::min(push, graph_[u][slot].capacity);
            v = u;
        }

        for (int v = sink; v != source;) {
            const auto [u, slot] = parent_[v];
            Edge &e = graph_[u][slot];
            e.capacity -= push;
            graph_[v][e.reverse].capacity += push;
            result.cost += push * e.cost;
            v = u;
        }
        result.flow += push;
    }
    return result;
}

std::int64_t
MinCostFlow::flowOn(int edge_id) const
{
    if (edge_id < 0 || edge_id >= static_cast<int>(edgeIndex_.size()))
        panic(str("MinCostFlow::flowOn: bad edge id ", edge_id));
    const auto [node, slot] = edgeIndex_[edge_id];
    const Edge &e = graph_[node][slot];
    // Flow pushed equals the residual capacity of the reverse edge.
    return graph_[e.to][e.reverse].capacity;
}

} // namespace qplacer
