#include "math/plan_cache.hpp"

#include <map>
#include <mutex>

namespace qplacer {

namespace {

std::mutex g_mutex;
std::map<std::size_t, std::shared_ptr<const DctPlan>> g_dct;
std::map<std::size_t, std::shared_ptr<const FftPlan>> g_fft;

template <class Plan>
std::shared_ptr<const Plan>
lookup(std::map<std::size_t, std::shared_ptr<const Plan>> &cache,
       std::size_t n)
{
    const std::lock_guard<std::mutex> lock(g_mutex);
    auto it = cache.find(n);
    if (it == cache.end())
        it = cache.emplace(n, std::make_shared<const Plan>(n)).first;
    return it->second;
}

} // namespace

std::shared_ptr<const DctPlan>
PlanCache::dct(std::size_t n)
{
    return lookup(g_dct, n);
}

std::shared_ptr<const FftPlan>
PlanCache::fft(std::size_t n)
{
    return lookup(g_fft, n);
}

std::size_t
PlanCache::size()
{
    const std::lock_guard<std::mutex> lock(g_mutex);
    return g_dct.size() + g_fft.size();
}

} // namespace qplacer
