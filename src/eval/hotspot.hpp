/**
 * @file
 * Frequency hotspot analysis (Eq. 18): finds spatial-violation pairs
 * (near-resonant instances whose padded footprints are adjacent) and
 * aggregates them into the hotspot proportion P_h and the impacted
 * qubit count of Fig. 12.
 */

#ifndef QPLACER_EVAL_HOTSPOT_HPP
#define QPLACER_EVAL_HOTSPOT_HPP

#include <vector>

#include "netlist/netlist.hpp"
#include "physics/constants.hpp"

namespace qplacer {

/** One spatial violation: a near-resonant adjacent pair. */
struct HotspotPair
{
    int a = -1;          ///< Instance id.
    int b = -1;          ///< Instance id.
    double gapUm = 0.0;  ///< Gap between padded footprints.
    double distUm = 0.0; ///< Centroid distance.
    double overlapLenUm = 0.0; ///< Shared-boundary length term of Eq. 18.
};

/** Aggregated hotspot report for one layout. */
struct HotspotReport
{
    std::vector<HotspotPair> pairs;

    /** Frequency hotspot proportion P_h (as a percentage). */
    double phPercent = 0.0;

    /** Device qubits impacted directly or through a violating coupler. */
    std::vector<int> impactedQubits;
};

/** Hotspot analyzer parameters. */
struct HotspotParams
{
    /** Padded footprints closer than this count as adjacent (um). */
    double adjacencyTolUm = 50.0;

    /** Detuning threshold for the resonance indicator tau. */
    double detuningThresholdHz = kDetuningThresholdHz;
};

/** Scan a placed netlist for hotspots. */
HotspotReport analyzeHotspots(const Netlist &netlist,
                              HotspotParams params = {});

} // namespace qplacer

#endif // QPLACER_EVAL_HOTSPOT_HPP
