/**
 * @file
 * Cross-cut evaluation for multi-die layouts: how many couplers cross
 * a die boundary, how much wirelength the crossings cost, and how the
 * instances distribute over the dies.
 */

#ifndef QPLACER_EVAL_CROSSCUT_HPP
#define QPLACER_EVAL_CROSSCUT_HPP

#include <vector>

#include "multidie/die_plan.hpp"
#include "netlist/netlist.hpp"

namespace qplacer {

/** Multi-die partition quality of a placed netlist. */
struct CrossCutMetrics
{
    bool active = false; ///< False for single-die layouts (all zeros).
    int dies = 0;        ///< Die count of the plan.

    /** Couplers whose endpoint qubits sit on different dies. */
    int crossingCouplers = 0;

    /** Weighted HPWL of the nets whose endpoints sit on different dies. */
    double crossingWirelengthUm = 0.0;

    /** Instances per die (indexed row-major like DiePlan::dies). */
    std::vector<int> dieInstances;

    /** Padded-area utilization per die. */
    std::vector<double> dieUtilization;
};

/**
 * Evaluate @p netlist against @p plan. Every instance is attributed to
 * the die owning its center (DiePlan::dieAt); a coupler crosses a cut
 * when its two endpoint qubits land on different dies.
 */
CrossCutMetrics computeCrossCut(const Netlist &netlist, const DiePlan &plan);

} // namespace qplacer

#endif // QPLACER_EVAL_CROSSCUT_HPP
