/**
 * @file
 * Benchmark evaluator (Section VI-A): maps a benchmark onto many
 * connected device subsets (same subsets for every placer, as in the
 * paper) and averages the Eq. 15 fidelity over them.
 */

#ifndef QPLACER_EVAL_EVALUATOR_HPP
#define QPLACER_EVAL_EVALUATOR_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "circuits/circuit.hpp"
#include "eval/fidelity.hpp"
#include "eval/hotspot.hpp"
#include "netlist/netlist.hpp"
#include "topology/topology.hpp"

namespace qplacer {

/** Evaluator configuration. */
struct EvaluatorParams
{
    int numSubsets = 50;        ///< Mappings per benchmark (paper: 50).
    std::uint64_t subsetSeed = 7; ///< Shared across placers.
    HotspotParams hotspot;
    FidelityParams fidelity;
};

/** Result of evaluating one benchmark on one layout. */
struct BenchmarkResult
{
    std::string benchmark;
    double meanFidelity = 0.0;
    double minFidelity = 0.0;
    double maxFidelity = 0.0;
    std::vector<double> perSubset;
    int meanSwaps = 0;
};

/** Maps + scores benchmarks against a placed layout. */
class Evaluator
{
  public:
    explicit Evaluator(EvaluatorParams params = {});

    /**
     * Evaluate @p circuit on @p netlist (a placed layout of @p topo).
     * Subset sampling depends only on (topology, circuit size, seed), so
     * different placers are scored on identical mappings.
     */
    BenchmarkResult evaluate(const Topology &topo, const Netlist &netlist,
                             const Circuit &circuit) const;

    const EvaluatorParams &params() const { return params_; }

  private:
    EvaluatorParams params_;
};

} // namespace qplacer

#endif // QPLACER_EVAL_EVALUATOR_HPP
