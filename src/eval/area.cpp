#include "eval/area.hpp"

#include "util/logging.hpp"

namespace qplacer {

AreaMetrics
computeArea(const Netlist &netlist)
{
    if (netlist.numInstances() == 0)
        fatal("computeArea: empty netlist");

    AreaMetrics out;
    std::vector<Rect> rects;
    rects.reserve(netlist.instances().size());
    for (const Instance &inst : netlist.instances()) {
        rects.push_back(inst.paddedRect());
        out.apolyUm2 += inst.paddedArea();
    }
    out.enclosingRect = boundingBox(rects);
    out.amerUm2 = out.enclosingRect.area();
    out.utilization = out.amerUm2 > 0.0 ? out.apolyUm2 / out.amerUm2 : 0.0;
    return out;
}

} // namespace qplacer
