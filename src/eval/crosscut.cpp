#include "eval/crosscut.hpp"

#include <cmath>

namespace qplacer {

CrossCutMetrics
computeCrossCut(const Netlist &netlist, const DiePlan &plan)
{
    CrossCutMetrics out;
    out.active = plan.active();
    out.dies = plan.spec.numDies();
    out.dieInstances.assign(plan.dies.size(), 0);
    out.dieUtilization.assign(plan.dies.size(), 0.0);
    if (!out.active)
        return out;

    // Die assignment per instance (center ownership).
    std::vector<int> die_of(netlist.numInstances(), 0);
    for (const Instance &inst : netlist.instances()) {
        const int d = plan.dieAt(inst.pos);
        die_of[static_cast<std::size_t>(inst.id)] = d;
        out.dieInstances[static_cast<std::size_t>(d)] += 1;
        out.dieUtilization[static_cast<std::size_t>(d)] +=
            inst.paddedArea();
    }
    for (std::size_t d = 0; d < plan.dies.size(); ++d) {
        const double area = plan.dies[d].area();
        out.dieUtilization[d] =
            area > 0.0 ? out.dieUtilization[d] / area : 0.0;
    }

    for (const Resonator &res : netlist.resonators()) {
        const int qa = netlist.qubitInstance(res.qubitA);
        const int qb = netlist.qubitInstance(res.qubitB);
        if (die_of[static_cast<std::size_t>(qa)] !=
            die_of[static_cast<std::size_t>(qb)])
            out.crossingCouplers += 1;
    }

    for (const Net &net : netlist.nets()) {
        if (die_of[static_cast<std::size_t>(net.a)] ==
            die_of[static_cast<std::size_t>(net.b)])
            continue;
        const Vec2 &pa = netlist.instance(net.a).pos;
        const Vec2 &pb = netlist.instance(net.b).pos;
        out.crossingWirelengthUm +=
            net.weight *
            (std::abs(pa.x - pb.x) + std::abs(pa.y - pb.y));
    }
    return out;
}

} // namespace qplacer
