/**
 * @file
 * Program fidelity model (Eq. 15):
 *   F = prod_q (1 - eps_q) * prod_g (1 - eps_g) * prod_r (1 - eps_r)
 * over the *active* qubits and resonators of a mapped benchmark.
 *
 * eps_q: intrinsic gate error + T1/T2 decoherence over the program.
 * eps_g: Rabi-exchange crosstalk for qubit pairs in spatial violation.
 * eps_r: ditto for resonator (segment) pairs in spatial violation.
 */

#ifndef QPLACER_EVAL_FIDELITY_HPP
#define QPLACER_EVAL_FIDELITY_HPP

#include <vector>

#include "circuits/scheduler.hpp"
#include "eval/hotspot.hpp"
#include "netlist/netlist.hpp"
#include "physics/capacitance.hpp"
#include "physics/constants.hpp"
#include "physics/decoherence.hpp"

namespace qplacer {

/** Error-model parameters. */
struct FidelityParams
{
    double gate1qError = kGate1qError;
    double gate2qError = kGate2qError;
    DecoherenceModel decoherence{};
    CapacitanceModel qubitCp = CapacitanceModel::qubitQubit();
    CapacitanceModel resonatorCp = CapacitanceModel::resonatorResonator();

    /** Cap on any single crosstalk error term (keeps F > 0). */
    double crosstalkCap = 0.99;
};

/** Per-term breakdown of one fidelity evaluation. */
struct FidelityBreakdown
{
    double gateFidelity = 1.0;       ///< prod (1 - eps_q gates).
    double decoherenceFidelity = 1.0;///< prod (1 - eps_q decoherence).
    double qubitCrosstalk = 1.0;     ///< prod (1 - eps_g).
    double resonatorCrosstalk = 1.0; ///< prod (1 - eps_r).
    double total = 1.0;

    int violatedQubitPairs = 0;
    int violatedResonatorPairs = 0;
};

/** Evaluates Eq. 15 for mapped circuits on a placed layout. */
class FidelityModel
{
  public:
    explicit FidelityModel(FidelityParams params = {});

    /**
     * Fidelity of @p mapped (with @p schedule timing) on the layout
     * whose hotspots are @p hotspots.
     * @param netlist The placed netlist (positions + frequencies).
     */
    FidelityBreakdown evaluate(const Netlist &netlist,
                               const HotspotReport &hotspots,
                               const MappedCircuit &mapped,
                               const Schedule &schedule) const;

    const FidelityParams &params() const { return params_; }

  private:
    FidelityParams params_;
};

} // namespace qplacer

#endif // QPLACER_EVAL_FIDELITY_HPP
