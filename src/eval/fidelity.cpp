#include "eval/fidelity.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "physics/coupling.hpp"
#include "util/logging.hpp"

namespace qplacer {

FidelityModel::FidelityModel(FidelityParams params)
    : params_(params)
{
}

FidelityBreakdown
FidelityModel::evaluate(const Netlist &netlist,
                        const HotspotReport &hotspots,
                        const MappedCircuit &mapped,
                        const Schedule &schedule) const
{
    FidelityBreakdown out;
    const auto &instances = netlist.instances();

    std::vector<char> active(netlist.numQubits(), 0);
    for (int q : mapped.activeQubits)
        active[q] = 1;

    // --- eps_q: gate error + decoherence per active qubit. ---
    for (int q : mapped.activeQubits) {
        const double gate_err =
            1.0 -
            std::pow(1.0 - params_.gate1qError, mapped.gates1q[q]) *
                std::pow(1.0 - params_.gate2qError, mapped.gates2q[q]);
        out.gateFidelity *= 1.0 - std::min(gate_err, 1.0);

        // Worst case: the qubit must hold state for the whole program.
        const double dec_err =
            params_.decoherence.errorOver(schedule.durationS);
        out.decoherenceFidelity *= 1.0 - dec_err;
    }

    // Active resonators: those carrying at least one 2q gate.
    std::set<int> active_resonators;
    for (const Resonator &res : netlist.resonators()) {
        if (res.edge >= 0 &&
            res.edge < static_cast<int>(schedule.edgeBusyS.size()) &&
            schedule.edgeBusyS[res.edge] > 0.0) {
            active_resonators.insert(res.id);
        }
    }

    // --- eps_g / eps_r over spatial violations. ---
    // Deduplicate resonator violations to the resonator-pair level
    // (many segment pairs can witness the same physical violation).
    std::set<std::pair<int, int>> seen_res_pairs;

    for (const HotspotPair &pair : hotspots.pairs) {
        const Instance &a = instances[pair.a];
        const Instance &b = instances[pair.b];
        const bool a_qubit = a.kind == InstanceKind::Qubit;
        const bool b_qubit = b.kind == InstanceKind::Qubit;

        if (a_qubit && b_qubit) {
            // Qubit-qubit crosstalk: the error lands on the active
            // qubit; inactive-only pairs cannot harm the program.
            if (!active[a.id] && !active[b.id])
                continue;
            const double cp = params_.qubitCp.cp(pair.distUm);
            const double g = couplingStrength(a.freqHz, b.freqHz, cp,
                                              kQubitCapFf, kQubitCapFf);
            const double eps = std::min(
                params_.crosstalkCap,
                worstCaseTransition(g, a.freqHz - b.freqHz,
                                    schedule.durationS));
            out.qubitCrosstalk *= 1.0 - eps;
            ++out.violatedQubitPairs;
        } else if (!a_qubit && !b_qubit) {
            // Resonator-resonator crosstalk; count once per resonator
            // pair, only if at least one resonator is in use.
            const auto key = std::make_pair(
                std::min(a.resonator, b.resonator),
                std::max(a.resonator, b.resonator));
            if (seen_res_pairs.count(key))
                continue;
            if (!active_resonators.count(a.resonator) &&
                !active_resonators.count(b.resonator))
                continue;
            seen_res_pairs.insert(key);
            const double cp = params_.resonatorCp.cp(pair.distUm);
            const double g =
                couplingStrength(a.freqHz, b.freqHz, cp, kResonatorCapFf,
                                 kResonatorCapFf);
            const double eps = std::min(
                params_.crosstalkCap,
                worstCaseTransition(g, a.freqHz - b.freqHz,
                                    schedule.durationS));
            out.resonatorCrosstalk *= 1.0 - eps;
            ++out.violatedResonatorPairs;
        }
        // Qubit-segment pairs never resonate: the bands are disjoint.
    }

    out.total = out.gateFidelity * out.decoherenceFidelity *
                out.qubitCrosstalk * out.resonatorCrosstalk;
    return out;
}

} // namespace qplacer
