#include "eval/hotspot.hpp"

#include <algorithm>

#include "eval/area.hpp"
#include "freq/spectrum.hpp"
#include "geometry/spatial_hash.hpp"
#include "util/logging.hpp"

namespace qplacer {

HotspotReport
analyzeHotspots(const Netlist &netlist, HotspotParams params)
{
    HotspotReport report;
    const auto &instances = netlist.instances();
    if (instances.empty())
        return report;

    double max_extent = 0.0;
    std::vector<Rect> region_rects;
    region_rects.reserve(instances.size());
    for (const Instance &inst : instances) {
        max_extent = std::max(
            {max_extent, inst.paddedWidth(), inst.paddedHeight()});
        region_rects.push_back(inst.paddedRect());
    }
    const Rect extent = boundingBox(region_rects);

    SpatialHash hash(extent, std::max(max_extent, 1.0));
    for (const Instance &inst : instances)
        hash.insert(inst.id, inst.pos);

    const double query_radius = max_extent + params.adjacencyTolUm;
    for (const Instance &inst : instances) {
        const Rect mine = inst.paddedRect();
        for (std::int32_t other : hash.query(inst.pos, query_radius)) {
            if (other <= inst.id)
                continue; // each unordered pair once
            const Instance &o = instances[other];
            if (inst.resonator >= 0 && inst.resonator == o.resonator)
                continue; // same physical resonator
            if (!isResonant(inst.freqHz, o.freqHz,
                            params.detuningThresholdHz))
                continue;
            const Rect theirs = o.paddedRect();
            const double gap = mine.gap(theirs);
            if (gap > params.adjacencyTolUm)
                continue;

            HotspotPair pair;
            pair.a = inst.id;
            pair.b = other;
            pair.gapUm = gap;
            pair.distUm = inst.pos.dist(o.pos);
            // Shared-boundary length: inflate by half the tolerance so
            // barely-separated footprints still register a length.
            pair.overlapLenUm =
                mine.inflated(params.adjacencyTolUm / 2.0)
                    .overlapLength(
                        theirs.inflated(params.adjacencyTolUm / 2.0));
            report.pairs.push_back(pair);
        }
    }

    // P_h (Eq. 18), expressed as a percentage.
    const AreaMetrics area = computeArea(netlist);
    double acc = 0.0;
    for (const HotspotPair &p : report.pairs)
        acc += p.overlapLenUm * p.distUm;
    report.phPercent =
        area.apolyUm2 > 0.0 ? 100.0 * acc / area.apolyUm2 : 0.0;

    // Impacted qubits: endpoints of violating qubit pairs, plus every
    // qubit hanging off a violating resonator (crosstalk propagates
    // through the coupler, Section VI-B).
    std::vector<char> impacted(netlist.numQubits(), 0);
    auto mark_instance = [&](int inst_id) {
        const Instance &inst = instances[inst_id];
        if (inst.kind == InstanceKind::Qubit) {
            impacted[inst.id] = 1;
        } else {
            const Resonator &res = netlist.resonator(inst.resonator);
            impacted[res.qubitA] = 1;
            impacted[res.qubitB] = 1;
        }
    };
    for (const HotspotPair &p : report.pairs) {
        mark_instance(p.a);
        mark_instance(p.b);
    }
    for (int q = 0; q < netlist.numQubits(); ++q) {
        if (impacted[q])
            report.impactedQubits.push_back(q);
    }
    return report;
}

} // namespace qplacer
