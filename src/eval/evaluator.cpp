#include "eval/evaluator.hpp"

#include <algorithm>

#include "circuits/mapper.hpp"
#include "circuits/subsets.hpp"
#include "math/stats.hpp"
#include "util/logging.hpp"

namespace qplacer {

Evaluator::Evaluator(EvaluatorParams params)
    : params_(params)
{
}

BenchmarkResult
Evaluator::evaluate(const Topology &topo, const Netlist &netlist,
                    const Circuit &circuit) const
{
    if (circuit.numQubits() > topo.numQubits()) {
        fatal(str("Evaluator: benchmark ", circuit.name(), " needs ",
                  circuit.numQubits(), " qubits but device has ",
                  topo.numQubits()));
    }

    BenchmarkResult result;
    result.benchmark = circuit.name();

    // Layout-dependent state, computed once.
    const HotspotReport hotspots =
        analyzeHotspots(netlist, params_.hotspot);
    const FidelityModel model(params_.fidelity);
    const Mapper mapper(topo.coupling);

    // Subset seed depends only on device + circuit width: all placers
    // see the same mappings.
    const std::uint64_t seed =
        params_.subsetSeed * 2654435761ULL +
        static_cast<std::uint64_t>(circuit.numQubits()) * 97 +
        static_cast<std::uint64_t>(topo.numQubits());
    const auto subsets = sampleSubsets(
        topo.coupling, circuit.numQubits(), params_.numSubsets, seed);

    long long swap_total = 0;
    for (const auto &subset : subsets) {
        const MappedCircuit mapped = mapper.map(circuit, subset);
        const Schedule schedule = scheduleAsap(mapped, topo.coupling);
        const FidelityBreakdown fb =
            model.evaluate(netlist, hotspots, mapped, schedule);
        result.perSubset.push_back(fb.total);
        swap_total += mapped.numSwaps;
    }

    result.meanFidelity = mean(result.perSubset);
    result.minFidelity = minOf(result.perSubset);
    result.maxFidelity = maxOf(result.perSubset);
    result.meanSwaps = static_cast<int>(
        swap_total / std::max<std::size_t>(1, subsets.size()));
    return result;
}

} // namespace qplacer
