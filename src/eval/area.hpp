/**
 * @file
 * Area metrics (Eq. 17): minimum enclosing rectangle A_mer, total
 * instance area A_poly, and the substrate utilization ratio.
 */

#ifndef QPLACER_EVAL_AREA_HPP
#define QPLACER_EVAL_AREA_HPP

#include "geometry/rect.hpp"
#include "netlist/netlist.hpp"

namespace qplacer {

/** Area summary of a placed netlist. */
struct AreaMetrics
{
    Rect enclosingRect;      ///< The minimum enclosing rectangle.
    double amerUm2 = 0.0;    ///< Area of the enclosing rectangle.
    double apolyUm2 = 0.0;   ///< Sum of padded instance areas.
    double utilization = 0.0; ///< apoly / amer (Eq. 17).
};

/** Compute area metrics over the padded footprints of @p netlist. */
AreaMetrics computeArea(const Netlist &netlist);

} // namespace qplacer

#endif // QPLACER_EVAL_AREA_HPP
