#include "physics/transmon.hpp"

#include "util/logging.hpp"

namespace qplacer {

void
TransmonParams::validate() const
{
    if (freqHz <= 0.0)
        fatal("TransmonParams: non-positive frequency");
    if (capFf <= 0.0)
        fatal("TransmonParams: non-positive capacitance");
    if (sizeUm <= 0.0)
        fatal("TransmonParams: non-positive size");
    if (t1 <= 0.0 || t2 <= 0.0)
        fatal("TransmonParams: non-positive coherence time");
    if (anharmonicityHz <= 0.0 || anharmonicityHz >= freqHz)
        fatal("TransmonParams: anharmonicity out of range");
}

} // namespace qplacer
