#include "physics/resonator.hpp"

#include "util/logging.hpp"

namespace qplacer {

double
resonatorLengthUm(double freq_hz)
{
    if (freq_hz <= 0.0)
        fatal("resonatorLengthUm: non-positive frequency");
    // v0 [m/s] / (2 f [Hz]) gives meters; convert to micrometers.
    return kWaveSpeedMps / (2.0 * freq_hz) * 1e6;
}

double
resonatorFreqHz(double length_um)
{
    if (length_um <= 0.0)
        fatal("resonatorFreqHz: non-positive length");
    return kWaveSpeedMps / (2.0 * length_um * 1e-6);
}

double
ResonatorParams::lengthUm() const
{
    return resonatorLengthUm(freqHz);
}

void
ResonatorParams::validate() const
{
    if (freqHz <= 0.0)
        fatal("ResonatorParams: non-positive frequency");
    if (capFf <= 0.0)
        fatal("ResonatorParams: non-positive capacitance");
    if (wireWidthUm <= 0.0)
        fatal("ResonatorParams: non-positive wire width");
}

} // namespace qplacer
