#include "physics/boxmode.hpp"

#include <cmath>

#include "util/logging.hpp"

namespace qplacer {

namespace {
constexpr double kLightSpeedMps = 2.99792458e8;
} // namespace

double
tm110FrequencyHz(double width_um, double height_um, double eps_r)
{
    if (width_um <= 0.0 || height_um <= 0.0)
        fatal("tm110FrequencyHz: non-positive substrate size");
    if (eps_r < 1.0)
        fatal("tm110FrequencyHz: relative permittivity below vacuum");
    const double a = width_um * 1e-6;
    const double b = height_um * 1e-6;
    return kLightSpeedMps / (2.0 * std::sqrt(eps_r)) *
           std::sqrt(1.0 / (a * a) + 1.0 / (b * b));
}

double
substrateModeMarginHz(const Rect &substrate, double top_component_hz,
                      double eps_r)
{
    return tm110FrequencyHz(substrate.width(), substrate.height(),
                            eps_r) -
           top_component_hz;
}

} // namespace qplacer
