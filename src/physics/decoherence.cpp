#include "physics/decoherence.hpp"

#include <cmath>

#include "util/logging.hpp"

namespace qplacer {

DecoherenceModel::DecoherenceModel(double t1_s, double t2_s)
    : t1_(t1_s), t2_(t2_s)
{
    if (t1_s <= 0.0 || t2_s <= 0.0)
        fatal("DecoherenceModel: non-positive coherence time");
    rate_ = 1.0 / (2.0 * t1_) + 1.0 / (2.0 * t2_);
}

double
DecoherenceModel::errorOver(double duration_s) const
{
    if (duration_s < 0.0)
        panic("DecoherenceModel::errorOver: negative duration");
    return 1.0 - std::exp(-duration_s * rate_);
}

double
DecoherenceModel::fidelityOver(double duration_s) const
{
    return 1.0 - errorOver(duration_s);
}

} // namespace qplacer
