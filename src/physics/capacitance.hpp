/**
 * @file
 * Parasitic capacitance versus separation distance.
 *
 * The paper extracts Cp(d) from Qiskit Metal EM simulation (Fig. 5b,
 * Fig. 6c); we substitute a calibrated closed-form decay with the same
 * qualitative behaviour: monotone decreasing, ~fF at contact, negligible
 * beyond a few qubit pitches. See DESIGN.md section 1.
 */

#ifndef QPLACER_PHYSICS_CAPACITANCE_HPP
#define QPLACER_PHYSICS_CAPACITANCE_HPP

namespace qplacer {

/**
 * Power-law parasitic capacitance model:
 *   Cp(d) = c0 / (1 + (d / d0)^p)     [fF; d in um]
 *
 * The quartic default makes the coupling fall off sharply past one
 * component pitch, which is what confines crosstalk to spatial-violation
 * pairs (Section III-A).
 */
class CapacitanceModel
{
  public:
    /**
     * @param c0 Contact-limit capacitance (fF).
     * @param d0 Knee distance (um).
     * @param p  Decay exponent.
     */
    CapacitanceModel(double c0, double d0, double p);

    /** Parasitic capacitance at center distance @p d_um (fF). */
    double cp(double d_um) const;

    /** Contact-limit capacitance (fF). */
    double c0() const { return c0_; }

    /** Model calibrated for qubit-qubit parasitics. */
    static CapacitanceModel qubitQubit();

    /** Model calibrated for resonator-resonator parasitics. */
    static CapacitanceModel resonatorResonator();

  private:
    double c0_;
    double d0_;
    double p_;
};

} // namespace qplacer

#endif // QPLACER_PHYSICS_CAPACITANCE_HPP
