#include "physics/capacitance.hpp"

#include <cmath>

#include "util/logging.hpp"

namespace qplacer {

CapacitanceModel::CapacitanceModel(double c0, double d0, double p)
    : c0_(c0), d0_(d0), p_(p)
{
    if (c0 <= 0.0 || d0 <= 0.0 || p <= 0.0)
        fatal("CapacitanceModel: parameters must be positive");
}

double
CapacitanceModel::cp(double d_um) const
{
    if (d_um < 0.0)
        panic("CapacitanceModel::cp: negative distance");
    return c0_ / (1.0 + std::pow(d_um / d0_, p_));
}

CapacitanceModel
CapacitanceModel::qubitQubit()
{
    // Calibrated so that two resonant qubits whose padded footprints abut
    // (center distance ~0.8 mm) exchange energy strongly on program time
    // scales (g ~ MHz), while pairs a pitch further out are far weaker.
    // See DESIGN.md.
    return CapacitanceModel(50.0, 150.0, 4.0);
}

CapacitanceModel
CapacitanceModel::resonatorResonator()
{
    // Resonator meanders couple over somewhat longer reach (larger
    // structures), with a bigger contact-limit capacitance.
    return CapacitanceModel(120.0, 200.0, 4.0);
}

} // namespace qplacer
