/**
 * @file
 * Substrate spurious electromagnetic (box) modes, Section III-C.
 *
 * A larger substrate lowers its first TM110 eigenmode; once that mode
 * drops near the component bands it hybridizes with qubits and
 * resonators (substrate crosstalk), which is the physical reason
 * QPlacer optimizes for a *compact* layout. The paper quotes
 * TM110 = 12.41 GHz for 5x5 mm^2 and 6.20 GHz for 10x10 mm^2 silicon.
 */

#ifndef QPLACER_PHYSICS_BOXMODE_HPP
#define QPLACER_PHYSICS_BOXMODE_HPP

#include "geometry/rect.hpp"

namespace qplacer {

/** Relative permittivity of the silicon substrate. */
constexpr double kSiliconEpsR = 11.7;

/**
 * First spurious mode (TM110) of a rectangular substrate:
 *   f = c / (2 sqrt(eps_r)) * sqrt(1/a^2 + 1/b^2)
 * @param width_um, height_um Substrate dimensions (um).
 */
double tm110FrequencyHz(double width_um, double height_um,
                        double eps_r = kSiliconEpsR);

/**
 * Margin between the substrate's TM110 mode and the top of the
 * component spectrum (Hz). Positive = safe; negative = the substrate
 * mode has dropped into/below the resonator band and would hybridize.
 * @param substrate  The layout's enclosing rectangle.
 * @param top_component_hz Highest component frequency on the chip
 *                   (default: top of the resonator band, 7 GHz).
 */
double substrateModeMarginHz(const Rect &substrate,
                             double top_component_hz = 7.0e9,
                             double eps_r = kSiliconEpsR);

} // namespace qplacer

#endif // QPLACER_PHYSICS_BOXMODE_HPP
