/**
 * @file
 * Fixed-frequency transmon qubit parameters (Section II-A).
 */

#ifndef QPLACER_PHYSICS_TRANSMON_HPP
#define QPLACER_PHYSICS_TRANSMON_HPP

#include "physics/constants.hpp"

namespace qplacer {

/** Parameters of a fixed-frequency pocket transmon. */
struct TransmonParams
{
    double freqHz = 5.0e9;                 ///< omega_01 / 2pi.
    double capFf = kQubitCapFf;            ///< Shunt capacitance.
    double anharmonicityHz = kAnharmonicityHz; ///< alpha / 2pi.
    double sizeUm = kQubitSizeUm;          ///< Pocket edge length.
    double t1 = kT1Seconds;                ///< Relaxation time.
    double t2 = kT2Seconds;                ///< Dephasing time.

    /**
     * Frequency of the 1->2 transition: omega_12 = omega_01 + alpha
     * (alpha is negative for transmons, but the paper quotes |alpha|;
     * we subtract).
     */
    double freq12Hz() const { return freqHz - anharmonicityHz; }

    /** Sanity-check the parameter ranges; fatal() on violation. */
    void validate() const;
};

} // namespace qplacer

#endif // QPLACER_PHYSICS_TRANSMON_HPP
