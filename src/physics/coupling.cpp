#include "physics/coupling.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/logging.hpp"

namespace qplacer {

double
couplingStrength(double f1_hz, double f2_hz, double cp_ff, double c1_ff,
                 double c2_ff)
{
    if (f1_hz <= 0.0 || f2_hz <= 0.0)
        panic("couplingStrength: non-positive frequency");
    if (cp_ff < 0.0 || c1_ff <= 0.0 || c2_ff <= 0.0)
        panic("couplingStrength: invalid capacitance");
    const double denom =
        std::sqrt((c1_ff + cp_ff) * (c2_ff + cp_ff));
    return 0.5 * std::sqrt(f1_hz * f2_hz) * cp_ff / denom;
}

double
effectiveCoupling(double g_hz, double delta_hz)
{
    const double abs_delta = std::abs(delta_hz);
    if (abs_delta < std::abs(g_hz))
        return std::abs(g_hz);
    return g_hz * g_hz / abs_delta;
}

double
rabiAmplitude(double g_hz, double delta_hz)
{
    const double g2 = g_hz * g_hz;
    const double half_delta = delta_hz / 2.0;
    const double denom = g2 + half_delta * half_delta;
    if (denom <= 0.0)
        return 0.0;
    return g2 / denom;
}

double
rabiTransitionProb(double g_hz, double delta_hz, double t_s)
{
    if (t_s < 0.0)
        panic("rabiTransitionProb: negative time");
    const double half_delta = delta_hz / 2.0;
    const double omega =
        std::sqrt(g_hz * g_hz + half_delta * half_delta);
    const double phase = 2.0 * std::numbers::pi * omega * t_s;
    const double s = std::sin(phase);
    return rabiAmplitude(g_hz, delta_hz) * s * s;
}

double
worstCaseTransition(double g_hz, double delta_hz, double t_s)
{
    if (t_s < 0.0)
        panic("worstCaseTransition: negative time");
    const double half_delta = delta_hz / 2.0;
    const double omega =
        std::sqrt(g_hz * g_hz + half_delta * half_delta);
    const double phase = 2.0 * std::numbers::pi * omega * t_s;
    const double amp = rabiAmplitude(g_hz, delta_hz);
    if (phase >= std::numbers::pi / 2.0)
        return amp;
    const double s = std::sin(phase);
    return amp * s * s;
}

double
dispersiveShift(double g_hz, double delta_hz)
{
    if (delta_hz == 0.0)
        panic("dispersiveShift: zero detuning");
    return g_hz * g_hz / delta_hz;
}

} // namespace qplacer
