/**
 * @file
 * Coupling-strength and Rabi-exchange models (Section III).
 *
 * Implements Eq. (6) for capacitive coupling strength, the dispersive
 * effective coupling g^2/Delta, and the (generalized) Rabi transition
 * probability used by the crosstalk error model (Eq. 16; see DESIGN.md
 * for the sign-typo note).
 */

#ifndef QPLACER_PHYSICS_COUPLING_HPP
#define QPLACER_PHYSICS_COUPLING_HPP

namespace qplacer {

/**
 * Capacitive coupling strength (Eq. 6):
 *   g = (1/2) sqrt(f1 f2) * Cp / sqrt((C1+Cp)(C2+Cp))   [Hz]
 *
 * @param f1_hz, f2_hz  Component frequencies (Hz).
 * @param cp_ff         Parasitic/coupler capacitance (fF).
 * @param c1_ff, c2_ff  Component self-capacitances (fF).
 */
double couplingStrength(double f1_hz, double f2_hz, double cp_ff,
                        double c1_ff, double c2_ff);

/**
 * Dispersive effective coupling g_eff = g^2 / |Delta| (Eq. 5); returns
 * g itself when |Delta| < g (the resonant regime where the dispersive
 * approximation breaks down).
 */
double effectiveCoupling(double g_hz, double delta_hz);

/**
 * Peak population transfer of generalized Rabi oscillation:
 *   A = g^2 / (g^2 + (Delta/2)^2)   in [0, 1].
 */
double rabiAmplitude(double g_hz, double delta_hz);

/**
 * Transition probability after time t:
 *   P(t) = A sin^2(2 pi sqrt(g^2 + (Delta/2)^2) t).
 */
double rabiTransitionProb(double g_hz, double delta_hz, double t_s);

/**
 * Worst-case transition probability over the exposure window [0, t]:
 * the sin^2 envelope, i.e. P(t) before the first Rabi peak and the full
 * amplitude A afterwards. This is the "worst case fidelity" reading of
 * Eq. 16.
 */
double worstCaseTransition(double g_hz, double delta_hz, double t_s);

/** Dispersive shift chi = g^2 / Delta (signed; Eq. under Sec. II-B). */
double dispersiveShift(double g_hz, double delta_hz);

} // namespace qplacer

#endif // QPLACER_PHYSICS_COUPLING_HPP
