/**
 * @file
 * Physical and architectural constants used across the library.
 *
 * Values follow Section V-C of the paper (Architectural Features):
 * 400x400 um^2 pocket transmons, qubit band 4.8-5.2 GHz, resonator band
 * 6.0-7.0 GHz, paddings d_q = 400 um / d_r = 100 um, detuning threshold
 * 0.1 GHz, resonator speed of light 1.3e8 m/s.
 *
 * Unit conventions throughout the library:
 *   - distances in micrometers (um)
 *   - frequencies in hertz (Hz)
 *   - times in seconds (s)
 *   - capacitances in femtofarads (fF) -- only ratios enter the models
 */

#ifndef QPLACER_PHYSICS_CONSTANTS_HPP
#define QPLACER_PHYSICS_CONSTANTS_HPP

namespace qplacer {

/** Transmon pocket edge length (um). */
constexpr double kQubitSizeUm = 400.0;

/** Qubit padding d_q (um, per side). */
constexpr double kQubitPadUm = 400.0;

/** Resonator padding d_r (um, per side). */
constexpr double kResonatorPadUm = 100.0;

/** Effective resonator wire width used for area reservation (um). */
constexpr double kResonatorWireWidthUm = 100.0;

/** Qubit frequency band (Hz). */
constexpr double kQubitBandLoHz = 4.8e9;
constexpr double kQubitBandHiHz = 5.2e9;

/** Resonator frequency band (Hz). */
constexpr double kResonatorBandLoHz = 6.0e9;
constexpr double kResonatorBandHiHz = 7.0e9;

/** Detuning threshold Delta_c below which components count as resonant. */
constexpr double kDetuningThresholdHz = 0.1e9;

/** Phase velocity in the coplanar waveguide, v0 (m/s). */
constexpr double kWaveSpeedMps = 1.3e8;

/** Transmon anharmonicity alpha/2pi (Hz). */
constexpr double kAnharmonicityHz = 310.0e6;

/** Transmon shunt capacitance (fF). */
constexpr double kQubitCapFf = 65.0;

/** Resonator total capacitance (fF). */
constexpr double kResonatorCapFf = 400.0;

/** Relaxation and dephasing times (s). */
constexpr double kT1Seconds = 100e-6;
constexpr double kT2Seconds = 80e-6;

/** Gate durations (s): single-qubit microwave pulse, RIP two-qubit gate. */
constexpr double kGate1qSeconds = 35e-9;
constexpr double kGate2qSeconds = 300e-9;

/** Intrinsic gate error rates (per gate, excluding crosstalk). */
constexpr double kGate1qError = 3.0e-4;
constexpr double kGate2qError = 7.0e-3;

} // namespace qplacer

#endif // QPLACER_PHYSICS_CONSTANTS_HPP
