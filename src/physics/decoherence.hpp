/**
 * @file
 * Decoherence error model: T1/T2 decay over idle and gate windows
 * (the epsilon_q decoherence term of Eq. 15).
 */

#ifndef QPLACER_PHYSICS_DECOHERENCE_HPP
#define QPLACER_PHYSICS_DECOHERENCE_HPP

#include "physics/constants.hpp"

namespace qplacer {

/** Exponential T1/T2 decoherence model. */
class DecoherenceModel
{
  public:
    DecoherenceModel(double t1_s = kT1Seconds, double t2_s = kT2Seconds);

    /**
     * Error probability accumulated by one qubit over @p duration_s of
     * wall-clock time (idle or gated):
     *   eps = 1 - exp(-t (1/(2 T1) + 1/(2 T2))).
     */
    double errorOver(double duration_s) const;

    /** Survival probability, 1 - errorOver(t). */
    double fidelityOver(double duration_s) const;

    double t1() const { return t1_; }
    double t2() const { return t2_; }

  private:
    double t1_;
    double t2_;
    double rate_; ///< Combined decay rate 1/(2 T1) + 1/(2 T2), 1/s.
};

} // namespace qplacer

#endif // QPLACER_PHYSICS_DECOHERENCE_HPP
