/**
 * @file
 * Coupling (bus) resonator parameters (Section II-A / V-C).
 *
 * A lambda/2 coplanar-waveguide resonator of frequency f has physical
 * length L = v0 / (2 f); for the paper's band (6.0-7.0 GHz) this gives
 * 10.8 mm down to 9.3 mm of meandered wire, which is the area the
 * partitioning step reserves on the substrate.
 */

#ifndef QPLACER_PHYSICS_RESONATOR_HPP
#define QPLACER_PHYSICS_RESONATOR_HPP

#include "physics/constants.hpp"

namespace qplacer {

/** Parameters of a half-wave bus resonator. */
struct ResonatorParams
{
    double freqHz = 6.5e9;            ///< Fundamental mode frequency.
    double capFf = kResonatorCapFf;   ///< Total capacitance.
    double wireWidthUm = kResonatorWireWidthUm; ///< Reserved wire width.

    /** Physical wire length L = v0 / (2 f), in micrometers. */
    double lengthUm() const;

    /** Reserved substrate area L * wire width (um^2). */
    double areaUm2() const { return lengthUm() * wireWidthUm; }

    /** Sanity-check parameter ranges; fatal() on violation. */
    void validate() const;
};

/** Resonator length (um) for a given fundamental frequency (Hz). */
double resonatorLengthUm(double freq_hz);

/** Fundamental frequency (Hz) for a given wire length (um). */
double resonatorFreqHz(double length_um);

} // namespace qplacer

#endif // QPLACER_PHYSICS_RESONATOR_HPP
