/**
 * @file
 * Electrostatic density penalty D(x, y) (Eq. 11/13).
 *
 * Instances are charges of magnitude equal to their padded area; the
 * density map is splatted onto a bin grid, the Poisson potential is
 * solved spectrally, and each instance feels force = charge * field.
 * The penalty value is the total potential energy sum_i q_i psi(x_i).
 */

#ifndef QPLACER_CORE_DENSITY_HPP
#define QPLACER_CORE_DENSITY_HPP

#include <memory>
#include <vector>

#include "core/poisson.hpp"
#include "geometry/bin_grid.hpp"
#include "netlist/netlist.hpp"

namespace qplacer {

class ThreadPool;

/** Bin-based electrostatic density model. */
class DensityModel
{
  public:
    /**
     * @param netlist        Netlist (kept by reference).
     * @param bins           Bins per axis (power of two).
     * @param target_density Target bin fill D-hat in [0, 1].
     * @param pool           Worker pool shared with the Poisson solver
     *                       (null = serial; not owned). Bin charges are
     *                       accumulated per chunk and reduced in chunk
     *                       order, so results are deterministic for a
     *                       fixed thread count.
     * @param path           Poisson DCT execution path (the default
     *                       planned path is bitwise-identical to the
     *                       unplanned one; the knob exists for the
     *                       planned-vs-unplanned benchmark).
     */
    DensityModel(const Netlist &netlist, int bins, double target_density,
                 ThreadPool *pool = nullptr,
                 PoissonSolver::Path path = PoissonSolver::Path::Planned);

    /**
     * Evaluate the density penalty at @p positions.
     * @param positions Instance centers.
     * @param gradient  Output gradient (resized/zeroed inside):
     *                  d(energy)/d(x_i) = -q_i * xi_x(x_i).
     * @return electrostatic energy sum_i q_i psi_i.
     */
    double evaluate(const std::vector<Vec2> &positions,
                    std::vector<Vec2> &gradient);

    /**
     * Density overflow after the last evaluate(): total charge above the
     * target bin capacity, normalized by total charge. The optimizer's
     * convergence criterion.
     */
    double overflow() const { return overflow_; }

    /** Pick a power-of-two bin count for a netlist of n instances. */
    static int autoBinCount(int num_instances);

    const BinGrid &grid() const { return grid_; }

  private:
    const Netlist &netlist_;
    BinGrid grid_;
    PoissonSolver solver_;
    double targetDensity_;
    ThreadPool *pool_;
    double overflow_ = 1.0;
    /**
     * Per-chunk charge grids for the parallel splat (chunks 1..k-1),
     * allocated lazily on the first threaded evaluate().
     */
    std::vector<BinGrid> splatScratch_;
};

} // namespace qplacer

#endif // QPLACER_CORE_DENSITY_HPP
