#include "core/density.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace qplacer {

DensityModel::DensityModel(const Netlist &netlist, int bins,
                           double target_density, ThreadPool *pool,
                           PoissonSolver::Path path)
    : netlist_(netlist),
      grid_(netlist.region(), bins, bins),
      solver_(bins, bins, netlist.region().width(),
              netlist.region().height(), pool, path),
      targetDensity_(target_density),
      pool_(pool)
{
    if (target_density <= 0.0 || target_density > 1.0)
        fatal("DensityModel: target density must be in (0, 1]");
}

int
DensityModel::autoBinCount(int num_instances)
{
    // Roughly one bin per instance, clamped to [32, 256].
    int bins = 32;
    while (bins * bins < num_instances && bins < 256)
        bins *= 2;
    return bins;
}

double
DensityModel::evaluate(const std::vector<Vec2> &positions,
                       std::vector<Vec2> &gradient)
{
    const auto &instances = netlist_.instances();
    if (positions.size() != instances.size())
        panic("DensityModel::evaluate: position count mismatch");

    gradient.assign(positions.size(), Vec2());

    // Rasterize charges; the density map stores charge per bin. Each
    // chunk splats into its own grid, and the grids are summed bin-wise
    // in chunk order (deterministic for a fixed thread count).
    grid_.clear();
    const int splat_chunks = parallelChunkCount(
        pool_, instances.size(), ThreadPool::kGrainMedium);
    // Chunks 1..k-1 accumulate into private grids (allocated on first
    // threaded use; chunk 0 writes straight into grid_).
    if (splat_chunks > 1 &&
        splatScratch_.size() <
            static_cast<std::size_t>(splat_chunks - 1)) {
        splatScratch_.assign(static_cast<std::size_t>(splat_chunks - 1),
                             grid_);
    }
    parallelForChunks(
        pool_, instances.size(),
        [&](int chunk, std::size_t begin, std::size_t end) {
            BinGrid &g = chunk == 0 ? grid_ : splatScratch_[chunk - 1];
            if (chunk != 0)
                g.clear();
            for (std::size_t i = begin; i < end; ++i) {
                const Instance &inst = instances[i];
                const Rect fp =
                    Rect::fromCenter(positions[i], inst.paddedWidth(),
                                     inst.paddedHeight());
                g.splat(fp, inst.paddedArea());
            }
        },
        ThreadPool::kGrainMedium);
    const std::size_t cells = grid_.data().size();
    if (splat_chunks > 1) {
        // Sum only the chunks that actually held instances, in chunk
        // order; a chunk that was empty never cleared its grid.
        std::vector<const double *> parts;
        for (int c = 1; c < splat_chunks; ++c) {
            const std::size_t n = instances.size();
            if (ThreadPool::chunkBegin(n, splat_chunks, c) <
                ThreadPool::chunkBegin(n, splat_chunks, c + 1))
                parts.push_back(splatScratch_[c - 1].data().data());
        }
        parallelFor(
            pool_, cells,
            [&](std::size_t begin, std::size_t end) {
                for (std::size_t i = begin; i < end; ++i) {
                    double q = grid_.data()[i];
                    for (const double *part : parts)
                        q += part[i];
                    grid_.data()[i] = q;
                }
            },
            ThreadPool::kGrainFine);
    }

    // Overflow: charge above the per-bin capacity.
    const double capacity = targetDensity_ * grid_.binArea();
    const int chunks = parallelChunks(pool_);
    std::vector<double> over_part(static_cast<std::size_t>(chunks), 0.0);
    std::vector<double> charge_part(static_cast<std::size_t>(chunks), 0.0);
    parallelForChunks(
        pool_, cells,
        [&](int chunk, std::size_t begin, std::size_t end) {
            double over = 0.0;
            double charge = 0.0;
            for (std::size_t i = begin; i < end; ++i) {
                const double q = grid_.data()[i];
                over += std::max(0.0, q - capacity);
                charge += q;
            }
            over_part[chunk] = over;
            charge_part[chunk] = charge;
        },
        ThreadPool::kGrainFine);
    double over = 0.0;
    double total_charge = 0.0;
    for (int c = 0; c < chunks; ++c) {
        over += over_part[c];
        total_charge += charge_part[c];
    }
    overflow_ = total_charge > 0.0 ? over / total_charge : 0.0;

    // Normalize the map to charge density (charge / bin area) before the
    // Poisson solve so the field scale is resolution-independent.
    std::vector<double> density = grid_.data();
    const double inv_bin_area = 1.0 / grid_.binArea();
    parallelFor(
        pool_, cells,
        [&](std::size_t begin, std::size_t end) {
            for (std::size_t i = begin; i < end; ++i)
                density[i] *= inv_bin_area;
        },
        ThreadPool::kGrainFine);

    PoissonSolver::Solution sol = solver_.solve(density);

    // Energy and per-instance gradient: sample psi / xi over the
    // footprint (area-weighted average over overlapped bins).
    BinGrid psi(grid_.region(), grid_.nx(), grid_.ny());
    BinGrid ex(grid_.region(), grid_.nx(), grid_.ny());
    BinGrid ey(grid_.region(), grid_.nx(), grid_.ny());
    psi.data() = std::move(sol.potential);
    ex.data() = std::move(sol.fieldX);
    ey.data() = std::move(sol.fieldY);

    // Instances are sampled independently; only the energy needs a
    // chunk-ordered reduction.
    return parallelReduce(
        pool_, instances.size(),
        [&](std::size_t begin, std::size_t end) {
            double energy = 0.0;
            for (std::size_t i = begin; i < end; ++i) {
                const Instance &inst = instances[i];
                const double q = inst.paddedArea();
                const Rect fp =
                    Rect::fromCenter(positions[i], inst.paddedWidth(),
                                     inst.paddedHeight());
                energy += q * psi.sample(fp);
                // d(energy)/dx = -q * xi_x (descending moves along the
                // field).
                gradient[i].x = -q * ex.sample(fp);
                gradient[i].y = -q * ey.sample(fp);
            }
            return energy;
        },
        ThreadPool::kGrainMedium);
}

} // namespace qplacer
