#include "core/density.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace qplacer {

DensityModel::DensityModel(const Netlist &netlist, int bins,
                           double target_density)
    : netlist_(netlist),
      grid_(netlist.region(), bins, bins),
      solver_(bins, bins, netlist.region().width(),
              netlist.region().height()),
      targetDensity_(target_density)
{
    if (target_density <= 0.0 || target_density > 1.0)
        fatal("DensityModel: target density must be in (0, 1]");
}

int
DensityModel::autoBinCount(int num_instances)
{
    // Roughly one bin per instance, clamped to [32, 256].
    int bins = 32;
    while (bins * bins < num_instances && bins < 256)
        bins *= 2;
    return bins;
}

double
DensityModel::evaluate(const std::vector<Vec2> &positions,
                       std::vector<Vec2> &gradient)
{
    const auto &instances = netlist_.instances();
    if (positions.size() != instances.size())
        panic("DensityModel::evaluate: position count mismatch");

    gradient.assign(positions.size(), Vec2());

    // Rasterize charges. The density map stores charge per bin.
    grid_.clear();
    for (std::size_t i = 0; i < instances.size(); ++i) {
        const Instance &inst = instances[i];
        const Rect fp = Rect::fromCenter(positions[i], inst.paddedWidth(),
                                         inst.paddedHeight());
        grid_.splat(fp, inst.paddedArea());
    }

    // Overflow: charge above the per-bin capacity.
    const double capacity = targetDensity_ * grid_.binArea();
    double over = 0.0;
    double total_charge = 0.0;
    for (double q : grid_.data()) {
        over += std::max(0.0, q - capacity);
        total_charge += q;
    }
    overflow_ = total_charge > 0.0 ? over / total_charge : 0.0;

    // Normalize the map to charge density (charge / bin area) before the
    // Poisson solve so the field scale is resolution-independent.
    std::vector<double> density = grid_.data();
    const double inv_bin_area = 1.0 / grid_.binArea();
    for (double &d : density)
        d *= inv_bin_area;

    const PoissonSolver::Solution sol = solver_.solve(density);

    // Energy and per-instance gradient: sample psi / xi over the
    // footprint (area-weighted average over overlapped bins).
    BinGrid psi(grid_.region(), grid_.nx(), grid_.ny());
    BinGrid ex(grid_.region(), grid_.nx(), grid_.ny());
    BinGrid ey(grid_.region(), grid_.nx(), grid_.ny());
    psi.data() = sol.potential;
    ex.data() = sol.fieldX;
    ey.data() = sol.fieldY;

    double energy = 0.0;
    for (std::size_t i = 0; i < instances.size(); ++i) {
        const Instance &inst = instances[i];
        const double q = inst.paddedArea();
        const Rect fp = Rect::fromCenter(positions[i], inst.paddedWidth(),
                                         inst.paddedHeight());
        energy += q * psi.sample(fp);
        // d(energy)/dx = -q * xi_x  (descending moves along the field).
        gradient[i].x = -q * ex.sample(fp);
        gradient[i].y = -q * ey.sample(fp);
    }
    return energy;
}

} // namespace qplacer
