/**
 * @file
 * Smooth wirelength model: per-net log-sum-exp approximation of HPWL
 * with analytic gradient (the WL(e; x, y) term of Eq. 12).
 */

#ifndef QPLACER_CORE_WIRELENGTH_HPP
#define QPLACER_CORE_WIRELENGTH_HPP

#include <vector>

#include "geometry/vec2.hpp"
#include "netlist/netlist.hpp"

namespace qplacer {

class ThreadPool;

/** Log-sum-exp smooth wirelength over the netlist's 2-pin nets. */
class WirelengthModel
{
  public:
    /**
     * @param netlist Netlist whose nets are measured (kept by pointer;
     *                must outlive the model).
     * @param gamma   Smoothing parameter (um); smaller = closer to HPWL.
     * @param pool    Worker pool (null = serial; not owned). Nets are
     *                chunked and per-chunk gradients are reduced in
     *                chunk order, so results are deterministic for a
     *                fixed thread count.
     */
    WirelengthModel(const Netlist &netlist, double gamma,
                    ThreadPool *pool = nullptr);

    /**
     * Smooth wirelength of the current @p positions and its gradient.
     * @param positions   Center per instance.
     * @param gradient    Output, accumulated (resized/zeroed inside).
     * @return smooth wirelength value (um).
     */
    double evaluate(const std::vector<Vec2> &positions,
                    std::vector<Vec2> &gradient) const;

    /** Exact half-perimeter wirelength (reporting metric). */
    double hpwl(const std::vector<Vec2> &positions) const;

    double gamma() const { return gamma_; }

    /** Update gamma (annealed by the optimizer as overflow falls). */
    void setGamma(double gamma);

  private:
    const Netlist &netlist_;
    double gamma_;
    ThreadPool *pool_;
    /** Per-chunk gradient scatter buffers (chunks x instances). */
    mutable std::vector<Vec2> gradScratch_;
};

} // namespace qplacer

#endif // QPLACER_CORE_WIRELENGTH_HPP
