#include "core/wirelength.hpp"

#include <cmath>

#include "util/logging.hpp"

namespace qplacer {

WirelengthModel::WirelengthModel(const Netlist &netlist, double gamma)
    : netlist_(netlist), gamma_(gamma)
{
    if (gamma <= 0.0)
        fatal("WirelengthModel: gamma must be positive");
}

void
WirelengthModel::setGamma(double gamma)
{
    if (gamma <= 0.0)
        fatal("WirelengthModel::setGamma: gamma must be positive");
    gamma_ = gamma;
}

double
WirelengthModel::evaluate(const std::vector<Vec2> &positions,
                          std::vector<Vec2> &gradient) const
{
    gradient.assign(positions.size(), Vec2());
    double total = 0.0;

    // For a 2-pin net the log-sum-exp wirelength reduces to the stable
    // closed form |d| + 2*gamma*log1p(exp(-|d|/gamma)) per axis, with
    // gradient tanh(d / (2*gamma)).
    auto axis = [this](double d, double &value, double &grad) {
        const double a = std::abs(d);
        value = a + 2.0 * gamma_ * std::log1p(std::exp(-a / gamma_));
        grad = std::tanh(d / (2.0 * gamma_));
    };

    for (const Net &net : netlist_.nets()) {
        const Vec2 &pa = positions[net.a];
        const Vec2 &pb = positions[net.b];
        double vx, gx, vy, gy;
        axis(pa.x - pb.x, vx, gx);
        axis(pa.y - pb.y, vy, gy);
        total += net.weight * (vx + vy);
        gradient[net.a].x += net.weight * gx;
        gradient[net.a].y += net.weight * gy;
        gradient[net.b].x -= net.weight * gx;
        gradient[net.b].y -= net.weight * gy;
    }
    return total;
}

double
WirelengthModel::hpwl(const std::vector<Vec2> &positions) const
{
    double total = 0.0;
    for (const Net &net : netlist_.nets()) {
        const Vec2 &pa = positions[net.a];
        const Vec2 &pb = positions[net.b];
        total += net.weight *
                 (std::abs(pa.x - pb.x) + std::abs(pa.y - pb.y));
    }
    return total;
}

} // namespace qplacer
