#include "core/wirelength.hpp"

#include <cmath>

#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace qplacer {

WirelengthModel::WirelengthModel(const Netlist &netlist, double gamma,
                                 ThreadPool *pool)
    : netlist_(netlist), gamma_(gamma), pool_(pool)
{
    if (gamma <= 0.0)
        fatal("WirelengthModel: gamma must be positive");
}

void
WirelengthModel::setGamma(double gamma)
{
    if (gamma <= 0.0)
        fatal("WirelengthModel::setGamma: gamma must be positive");
    gamma_ = gamma;
}

double
WirelengthModel::evaluate(const std::vector<Vec2> &positions,
                          std::vector<Vec2> &gradient) const
{
    gradient.assign(positions.size(), Vec2());

    // For a 2-pin net the log-sum-exp wirelength reduces to the stable
    // closed form |d| + 2*gamma*log1p(exp(-|d|/gamma)) per axis, with
    // gradient tanh(d / (2*gamma)).
    auto axis = [this](double d, double &value, double &grad) {
        const double a = std::abs(d);
        value = a + 2.0 * gamma_ * std::log1p(std::exp(-a / gamma_));
        grad = std::tanh(d / (2.0 * gamma_));
    };

    // Nets sharing an instance collide on the gradient, so each chunk
    // scatters into a private slice (the output itself when a single
    // chunk runs); the slices are then summed per instance in chunk
    // order.
    const auto &nets = netlist_.nets();
    const std::size_t n = positions.size();
    const int chunks = parallelChunkCount(pool_, nets.size(),
                                          ThreadPool::kGrainMedium);
    Vec2 *scratch = nullptr;
    if (chunks > 1) {
        gradScratch_.assign(static_cast<std::size_t>(chunks) * n, Vec2());
        scratch = gradScratch_.data();
    }
    std::vector<double> partial(static_cast<std::size_t>(chunks), 0.0);
    parallelForChunks(
        pool_, nets.size(),
        [&](int chunk, std::size_t begin, std::size_t end) {
            Vec2 *g = chunks == 1
                          ? gradient.data()
                          : scratch + static_cast<std::size_t>(chunk) * n;
            double acc = 0.0;
            for (std::size_t i = begin; i < end; ++i) {
                const Net &net = nets[i];
                const Vec2 &pa = positions[net.a];
                const Vec2 &pb = positions[net.b];
                double vx, gx, vy, gy;
                axis(pa.x - pb.x, vx, gx);
                axis(pa.y - pb.y, vy, gy);
                acc += net.weight * (vx + vy);
                g[net.a].x += net.weight * gx;
                g[net.a].y += net.weight * gy;
                g[net.b].x -= net.weight * gx;
                g[net.b].y -= net.weight * gy;
            }
            partial[chunk] = acc;
        },
        ThreadPool::kGrainMedium);
    if (chunks > 1) {
        parallelFor(
            pool_, n,
            [&](std::size_t begin, std::size_t end) {
                for (std::size_t i = begin; i < end; ++i) {
                    Vec2 acc;
                    for (int c = 0; c < chunks; ++c)
                        acc += scratch[static_cast<std::size_t>(c) * n +
                                       i];
                    gradient[i] = acc;
                }
            },
            ThreadPool::kGrainFine);
    }
    double total = 0.0;
    for (double p : partial)
        total += p;
    return total;
}

double
WirelengthModel::hpwl(const std::vector<Vec2> &positions) const
{
    const auto &nets = netlist_.nets();
    return parallelReduce(
        pool_, nets.size(),
        [&](std::size_t begin, std::size_t end) {
            double partial = 0.0;
            for (std::size_t i = begin; i < end; ++i) {
                const Net &net = nets[i];
                const Vec2 &pa = positions[net.a];
                const Vec2 &pb = positions[net.b];
                partial += net.weight * (std::abs(pa.x - pb.x) +
                                         std::abs(pa.y - pb.y));
            }
            return partial;
        },
        ThreadPool::kGrainMedium);
}

} // namespace qplacer
