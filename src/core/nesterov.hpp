/**
 * @file
 * Nesterov accelerated gradient with Barzilai-Borwein step estimation,
 * the optimizer of the ePlace family the engine is built on.
 */

#ifndef QPLACER_CORE_NESTEROV_HPP
#define QPLACER_CORE_NESTEROV_HPP

#include <functional>
#include <vector>

#include "geometry/rect.hpp"
#include "geometry/vec2.hpp"

namespace qplacer {

class ThreadPool;

/**
 * Nesterov iteration state over a vector of 2-D positions with region
 * clamping. The objective gradient is supplied per step by the caller
 * (the driver owns the penalty schedule).
 */
class NesterovOptimizer
{
  public:
    /**
     * @param region    Positions are clamped so @p half_sizes fit inside.
     * @param half_sizes Half extents (padded) per instance for clamping.
     * @param max_step_frac Cap on per-iteration movement, as a fraction
     *                  of the region diagonal.
     * @param pool      Worker pool for the per-instance loops (null =
     *                  serial; not owned). Reductions sum per-chunk
     *                  partials in chunk order, deterministic for a
     *                  fixed thread count.
     */
    NesterovOptimizer(Rect region, std::vector<Vec2> half_sizes,
                      double max_step_frac = 0.05,
                      ThreadPool *pool = nullptr);

    /** Reset to a fresh starting point. */
    void reset(const std::vector<Vec2> &initial);

    /**
     * Current lookahead point; evaluate the gradient here and pass it to
     * step().
     */
    const std::vector<Vec2> &lookahead() const { return v_; }

    /** Current major solution. */
    const std::vector<Vec2> &solution() const { return x_; }

    /**
     * Advance one iteration given the gradient at lookahead().
     * @return the step length used.
     */
    double step(const std::vector<Vec2> &gradient);

  private:
    void clamp(std::vector<Vec2> &positions) const;

    Rect region_;
    std::vector<Vec2> halfSizes_;
    double maxStep_;
    ThreadPool *pool_;

    std::vector<Vec2> x_;      ///< Major solution.
    std::vector<Vec2> v_;      ///< Lookahead.
    std::vector<Vec2> prevV_;  ///< Previous lookahead (for BB).
    std::vector<Vec2> prevG_;  ///< Previous gradient (for BB).
    double theta_ = 1.0;
    double alpha_ = 0.0;
    bool havePrev_ = false;
};

} // namespace qplacer

#endif // QPLACER_CORE_NESTEROV_HPP
