/**
 * @file
 * The penalty-method objective of Eq. (14):
 *   min  WL(x, y) + lambda * D(x, y) + lambda_f * F(x, y)
 * with lambda/lambda_f initialized from gradient-norm ratios and grown
 * multiplicatively each iteration, shifting the engine from pure area
 * (wirelength) optimization toward constraint satisfaction.
 */

#ifndef QPLACER_CORE_OBJECTIVE_HPP
#define QPLACER_CORE_OBJECTIVE_HPP

#include <memory>
#include <vector>

#include "core/density.hpp"
#include "core/freq_force.hpp"
#include "core/params.hpp"
#include "core/wirelength.hpp"
#include "multidie/cut_penalty.hpp"
#include "netlist/netlist.hpp"

namespace qplacer {

class ThreadPool;

/** Combined placement objective with penalty schedule. */
class PlacementObjective
{
  public:
    /**
     * @param pool Worker pool shared by every component model (null =
     *             serial; not owned, must outlive the objective).
     */
    PlacementObjective(const Netlist &netlist, const PlacerParams &params,
                       ThreadPool *pool = nullptr);

    /** Component values from the last evaluate(). */
    struct Components
    {
        double wirelength = 0.0;
        double density = 0.0;
        double freq = 0.0;
        double cut = 0.0; ///< Multi-die cut-crossing penalty (else 0).
        double total = 0.0;
    };

    /**
     * Evaluate the penalized objective and its gradient (per instance,
     * Jacobi-preconditioned by net degree + lambda * charge).
     */
    Components evaluate(const std::vector<Vec2> &positions,
                        std::vector<Vec2> &gradient);

    /**
     * Initialize lambda and lambda_f from the gradient norms at @p
     * positions (call once before the loop).
     */
    void initPenalties(const std::vector<Vec2> &positions);

    /** Grow both penalty multipliers one schedule step. */
    void growPenalties();

    /** Density overflow after the last evaluate(). */
    double overflow() const { return density_.overflow(); }

    /** Anneal the wirelength smoothing with the current overflow. */
    void updateGamma(double overflow);

    /** Exact HPWL for reporting. */
    double hpwl(const std::vector<Vec2> &positions) const;

    double lambda() const { return lambda_; }
    double freqLambda() const { return freqLambda_; }
    double cutLambda() const { return cutLambda_; }

  private:
    const Netlist &netlist_;
    PlacerParams params_;
    ThreadPool *pool_;
    WirelengthModel wirelength_;
    DensityModel density_;
    std::unique_ptr<FreqForceModel> freqForce_;
    std::unique_ptr<CutPenaltyModel> cutPenalty_; ///< Active die spec only.
    std::vector<double> netDegree_;
    double gammaBase_;
    double lambda_ = 0.0;
    double freqLambda_ = 0.0;
    bool freqLambdaLive_ = false; ///< Set once the force first activates.
    double freqLambdaInit_ = 0.0;
    double wlGradNorm_ = 0.0;     ///< Reference norm for lazy freq init.
    double cutLambda_ = 0.0;
    bool cutLambdaLive_ = false; ///< Set once a net first crosses a cut.
    double cutLambdaInit_ = 0.0;
    std::vector<Vec2> gradWl_;
    std::vector<Vec2> gradDen_;
    std::vector<Vec2> gradFreq_;
    std::vector<Vec2> gradCut_;
};

} // namespace qplacer

#endif // QPLACER_CORE_OBJECTIVE_HPP
