/**
 * @file
 * Spectral Poisson solver on a rectangular grid with Neumann boundary
 * conditions (the electrostatics of ePlace, Eq. under Sec. IV-C1).
 *
 * Given a charge density map rho, solves
 *     laplacian(psi) = -rho
 * by expanding rho in the cosine eigenbasis cos(w_u x) cos(w_v y),
 * dividing by (w_u^2 + w_v^2), and evaluating the potential psi and the
 * field xi = -grad(psi) via the DCT/DST kernels in math/dct.
 */

#ifndef QPLACER_CORE_POISSON_HPP
#define QPLACER_CORE_POISSON_HPP

#include <vector>

namespace qplacer {

class ThreadPool;

/** Solves the screened-free Poisson problem on an nx x ny grid. */
class PoissonSolver
{
  public:
    /**
     * @param nx, ny    Grid dimensions (powers of two).
     * @param width     Physical region width (um).
     * @param height    Physical region height (um).
     * @param pool      Worker pool for the row/column transform passes
     *                  (null = serial). Not owned; must outlive the
     *                  solver. Results are bitwise-identical for any
     *                  thread count (rows/columns are independent).
     */
    PoissonSolver(int nx, int ny, double width, double height,
                  ThreadPool *pool = nullptr);

    /** Result maps, row-major (index = iy*nx + ix). */
    struct Solution
    {
        std::vector<double> potential; ///< psi.
        std::vector<double> fieldX;    ///< xi_x = -d(psi)/dx.
        std::vector<double> fieldY;    ///< xi_y = -d(psi)/dy.
    };

    /**
     * Solve for the given density map (row-major, size nx*ny). The mean
     * (DC) component is dropped, as standard: only deviations from the
     * average density generate forces.
     */
    Solution solve(const std::vector<double> &density) const;

    int nx() const { return nx_; }
    int ny() const { return ny_; }

  private:
    int nx_;
    int ny_;
    double width_;
    double height_;
    ThreadPool *pool_; ///< Transform worker pool (null = serial).
    std::vector<double> wu_; ///< Eigen-frequencies along x.
    std::vector<double> wv_; ///< Eigen-frequencies along y.
};

} // namespace qplacer

#endif // QPLACER_CORE_POISSON_HPP
