/**
 * @file
 * Spectral Poisson solver on a rectangular grid with Neumann boundary
 * conditions (the electrostatics of ePlace, Eq. under Sec. IV-C1).
 *
 * Given a charge density map rho, solves
 *     laplacian(psi) = -rho
 * by expanding rho in the cosine eigenbasis cos(w_u x) cos(w_v y),
 * dividing by (w_u^2 + w_v^2), and evaluating the potential psi and the
 * field xi = -grad(psi) via the DCT/DST kernels in math/dct.
 *
 * The solver grabs the cached DctPlans for its row/column lengths at
 * construction and runs every transform pass through them with owned,
 * reusable scratch (see math/dct_plan): after the first solve no pass
 * allocates. The plan-free PR-2 kernels remain reachable via
 * Path::Unplanned for benchmarking and equivalence testing; both paths
 * produce bitwise-identical solutions.
 */

#ifndef QPLACER_CORE_POISSON_HPP
#define QPLACER_CORE_POISSON_HPP

#include <memory>
#include <vector>

#include "math/dct_plan.hpp"

namespace qplacer {

class ThreadPool;

/** Solves the screened-free Poisson problem on an nx x ny grid. */
class PoissonSolver
{
  public:
    /** Which DCT execution path solve() uses. */
    enum class Path
    {
        Planned,   ///< Cached DctPlan + reusable scratch (default).
        Unplanned, ///< Plan-free reference kernels (per-call alloc).
    };

    /**
     * @param nx, ny    Grid dimensions (powers of two).
     * @param width     Physical region width (um).
     * @param height    Physical region height (um).
     * @param pool      Worker pool for the row/column transform passes
     *                  (null = serial). Not owned; must outlive the
     *                  solver. Results are bitwise-identical for any
     *                  thread count (rows/columns are independent).
     * @param path      DCT execution path; Unplanned exists for the
     *                  planned-vs-unplanned benchmark and tests.
     */
    PoissonSolver(int nx, int ny, double width, double height,
                  ThreadPool *pool = nullptr, Path path = Path::Planned);

    /** Result maps, row-major (index = iy*nx + ix). */
    struct Solution
    {
        std::vector<double> potential; ///< psi.
        std::vector<double> fieldX;    ///< xi_x = -d(psi)/dx.
        std::vector<double> fieldY;    ///< xi_y = -d(psi)/dy.
    };

    /**
     * Solve for the given density map (row-major, size nx*ny). The mean
     * (DC) component is dropped, as standard: only deviations from the
     * average density generate forces.
     *
     * Reuses the solver's internal transform scratch: concurrent
     * solve() calls on the same instance must be externally
     * synchronized (distinct instances are independent).
     */
    Solution solve(const std::vector<double> &density) const;

    int nx() const { return nx_; }
    int ny() const { return ny_; }

    /** Execution path selected at construction. */
    Path path() const { return path_; }

  private:
    int nx_;
    int ny_;
    double width_;
    double height_;
    ThreadPool *pool_; ///< Transform worker pool (null = serial).
    Path path_;
    std::vector<double> wu_; ///< Eigen-frequencies along x.
    std::vector<double> wv_; ///< Eigen-frequencies along y.
    std::shared_ptr<const DctPlan> rowPlan_; ///< Plan for length nx.
    std::shared_ptr<const DctPlan> colPlan_; ///< Plan for length ny.
    mutable DctScratch scratch_; ///< Per-chunk transform workspaces.
};

} // namespace qplacer

#endif // QPLACER_CORE_POISSON_HPP
