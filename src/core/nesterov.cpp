#include "core/nesterov.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace qplacer {

NesterovOptimizer::NesterovOptimizer(Rect region,
                                     std::vector<Vec2> half_sizes,
                                     double max_step_frac)
    : region_(region), halfSizes_(std::move(half_sizes))
{
    maxStep_ = max_step_frac *
               std::hypot(region.width(), region.height());
}

void
NesterovOptimizer::reset(const std::vector<Vec2> &initial)
{
    if (initial.size() != halfSizes_.size())
        panic("NesterovOptimizer::reset: size mismatch");
    x_ = initial;
    v_ = initial;
    clamp(x_);
    clamp(v_);
    theta_ = 1.0;
    alpha_ = 0.0;
    havePrev_ = false;
}

void
NesterovOptimizer::clamp(std::vector<Vec2> &positions) const
{
    for (std::size_t i = 0; i < positions.size(); ++i) {
        const Vec2 &h = halfSizes_[i];
        positions[i].x = std::clamp(positions[i].x, region_.lo.x + h.x,
                                    region_.hi.x - h.x);
        positions[i].y = std::clamp(positions[i].y, region_.lo.y + h.y,
                                    region_.hi.y - h.y);
    }
}

double
NesterovOptimizer::step(const std::vector<Vec2> &gradient)
{
    if (gradient.size() != v_.size())
        panic("NesterovOptimizer::step: gradient size mismatch");

    // Barzilai-Borwein step length from successive lookahead gradients.
    if (havePrev_) {
        double num = 0.0;
        double den = 0.0;
        for (std::size_t i = 0; i < v_.size(); ++i) {
            const Vec2 ds = v_[i] - prevV_[i];
            const Vec2 dg = gradient[i] - prevG_[i];
            num += ds.normSq();
            den += ds.dot(dg);
        }
        if (den > 1e-16)
            alpha_ = num / den;
        // Otherwise keep the previous step length (curvature estimate
        // unavailable this iteration).
    }
    if (alpha_ <= 0.0) {
        // First iteration: normalize so the largest move is a small
        // fraction of the region.
        double gmax = 0.0;
        for (const Vec2 &g : gradient)
            gmax = std::max({gmax, std::abs(g.x), std::abs(g.y)});
        const double span =
            std::max(region_.width(), region_.height());
        alpha_ = gmax > 1e-16 ? 0.002 * span / gmax : 1.0;
    }

    // Cap the largest displacement at maxStep_.
    double gmax = 0.0;
    for (const Vec2 &g : gradient)
        gmax = std::max(gmax, g.norm());
    double alpha = alpha_;
    if (gmax * alpha > maxStep_)
        alpha = maxStep_ / gmax;

    prevV_ = v_;
    prevG_ = gradient;
    havePrev_ = true;

    // Nesterov update.
    std::vector<Vec2> x_new(v_.size());
    for (std::size_t i = 0; i < v_.size(); ++i)
        x_new[i] = v_[i] - gradient[i] * alpha;
    clamp(x_new);

    const double theta_new =
        (1.0 + std::sqrt(1.0 + 4.0 * theta_ * theta_)) / 2.0;
    const double momentum = (theta_ - 1.0) / theta_new;
    for (std::size_t i = 0; i < v_.size(); ++i)
        v_[i] = x_new[i] + (x_new[i] - x_[i]) * momentum;
    clamp(v_);

    x_ = std::move(x_new);
    theta_ = theta_new;
    return alpha;
}

} // namespace qplacer
