#include "core/nesterov.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace qplacer {

NesterovOptimizer::NesterovOptimizer(Rect region,
                                     std::vector<Vec2> half_sizes,
                                     double max_step_frac, ThreadPool *pool)
    : region_(region), halfSizes_(std::move(half_sizes)), pool_(pool)
{
    maxStep_ = max_step_frac *
               std::hypot(region.width(), region.height());
}

void
NesterovOptimizer::reset(const std::vector<Vec2> &initial)
{
    if (initial.size() != halfSizes_.size())
        panic("NesterovOptimizer::reset: size mismatch");
    x_ = initial;
    v_ = initial;
    clamp(x_);
    clamp(v_);
    theta_ = 1.0;
    alpha_ = 0.0;
    havePrev_ = false;
}

void
NesterovOptimizer::clamp(std::vector<Vec2> &positions) const
{
    parallelFor(
        pool_, positions.size(),
        [&](std::size_t begin, std::size_t end) {
            for (std::size_t i = begin; i < end; ++i) {
                const Vec2 &h = halfSizes_[i];
                positions[i].x =
                    std::clamp(positions[i].x, region_.lo.x + h.x,
                               region_.hi.x - h.x);
                positions[i].y =
                    std::clamp(positions[i].y, region_.lo.y + h.y,
                               region_.hi.y - h.y);
            }
        },
        ThreadPool::kGrainFine);
}

double
NesterovOptimizer::step(const std::vector<Vec2> &gradient)
{
    if (gradient.size() != v_.size())
        panic("NesterovOptimizer::step: gradient size mismatch");

    const std::size_t n = v_.size();
    const int chunks = parallelChunks(pool_);

    // Barzilai-Borwein step length from successive lookahead gradients.
    if (havePrev_) {
        std::vector<double> num_part(static_cast<std::size_t>(chunks),
                                     0.0);
        std::vector<double> den_part(static_cast<std::size_t>(chunks),
                                     0.0);
        parallelForChunks(
            pool_, n,
            [&](int chunk, std::size_t begin, std::size_t end) {
                double num = 0.0;
                double den = 0.0;
                for (std::size_t i = begin; i < end; ++i) {
                    const Vec2 ds = v_[i] - prevV_[i];
                    const Vec2 dg = gradient[i] - prevG_[i];
                    num += ds.normSq();
                    den += ds.dot(dg);
                }
                num_part[chunk] = num;
                den_part[chunk] = den;
            },
            ThreadPool::kGrainFine);
        double num = 0.0;
        double den = 0.0;
        for (int c = 0; c < chunks; ++c) {
            num += num_part[c];
            den += den_part[c];
        }
        if (den > 1e-16)
            alpha_ = num / den;
        // Otherwise keep the previous step length (curvature estimate
        // unavailable this iteration).
    }

    // max() is exact, so per-chunk maxima combine to the serial result
    // regardless of chunking.
    auto grad_max = [&](auto &&value) {
        std::vector<double> part(static_cast<std::size_t>(chunks), 0.0);
        parallelForChunks(
            pool_, n,
            [&](int chunk, std::size_t begin, std::size_t end) {
                double m = 0.0;
                for (std::size_t i = begin; i < end; ++i)
                    m = std::max(m, value(gradient[i]));
                part[chunk] = m;
            },
            ThreadPool::kGrainFine);
        double m = 0.0;
        for (int c = 0; c < chunks; ++c)
            m = std::max(m, part[c]);
        return m;
    };

    if (alpha_ <= 0.0) {
        // First iteration: normalize so the largest move is a small
        // fraction of the region.
        const double gmax = grad_max([](const Vec2 &g) {
            return std::max(std::abs(g.x), std::abs(g.y));
        });
        const double span =
            std::max(region_.width(), region_.height());
        alpha_ = gmax > 1e-16 ? 0.002 * span / gmax : 1.0;
    }

    // Cap the largest displacement at maxStep_.
    const double gmax =
        grad_max([](const Vec2 &g) { return g.norm(); });
    double alpha = alpha_;
    if (gmax * alpha > maxStep_)
        alpha = maxStep_ / gmax;

    prevV_ = v_;
    prevG_ = gradient;
    havePrev_ = true;

    // Nesterov update.
    std::vector<Vec2> x_new(n);
    parallelFor(
        pool_, n,
        [&](std::size_t begin, std::size_t end) {
            for (std::size_t i = begin; i < end; ++i)
                x_new[i] = v_[i] - gradient[i] * alpha;
        },
        ThreadPool::kGrainFine);
    clamp(x_new);

    const double theta_new =
        (1.0 + std::sqrt(1.0 + 4.0 * theta_ * theta_)) / 2.0;
    const double momentum = (theta_ - 1.0) / theta_new;
    parallelFor(
        pool_, n,
        [&](std::size_t begin, std::size_t end) {
            for (std::size_t i = begin; i < end; ++i)
                v_[i] = x_new[i] + (x_new[i] - x_[i]) * momentum;
        },
        ThreadPool::kGrainFine);
    clamp(v_);

    x_ = std::move(x_new);
    theta_ = theta_new;
    return alpha;
}

} // namespace qplacer
