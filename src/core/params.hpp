/**
 * @file
 * Tunable parameters of the global placement engine.
 */

#ifndef QPLACER_CORE_PARAMS_HPP
#define QPLACER_CORE_PARAMS_HPP

#include <cstdint>

#include "physics/constants.hpp"

namespace qplacer {

/** Global placement engine knobs (defaults follow Section V-C). */
struct PlacerParams
{
    /** Region fill target used when sizing the substrate. */
    double targetUtil = 0.72;

    /**
     * Target bin density D-hat relative to a full bin; the density
     * penalty pushes every bin at or below this.
     */
    double targetDensity = 0.9;

    /** Bin grid resolution (0 = pick a power of two automatically). */
    int bins = 0;

    /** Iteration budget for the Nesterov loop. */
    int maxIters = 900;

    /** Minimum iterations before convergence may stop the loop. */
    int minIters = 60;

    /** Stop when density overflow drops below this fraction. */
    double stopOverflow = 0.07;

    /** Wirelength smoothing gamma as a fraction of the region size. */
    double gammaFrac = 0.04;

    /** Per-iteration multiplier applied to the density penalty. */
    double lambdaGrowth = 1.05;

    /** Per-iteration multiplier applied to the frequency penalty. */
    double freqLambdaGrowth = 1.05;

    /**
     * Enable the frequency repulsive force (Eq. 9/10). Disabled for the
     * Classic baseline.
     */
    bool freqForce = true;

    /**
     * Initial frequency-penalty weight relative to the wirelength
     * gradient (analogous to the density lambda initialization).
     */
    double freqWeight = 1.0;

    /**
     * Frequency-force cutoff: pairs beyond
     * cutoff * (size_i + size_j) feel nothing. 0.8 puts the cutoff
     * comfortably past the hotspot adjacency threshold, leaving margin
     * for legalization displacement.
     */
    double freqCutoffFactor = 0.8;

    /**
     * Cap on the frequency penalty: lambda_f stops growing past
     * freqLambdaMaxFactor times its initial value. Keeps the engine in
     * a stable compromise when full separation is infeasible (crowded
     * spectra), instead of oscillating.
     */
    double freqLambdaMaxFactor = 300.0;

    /**
     * Multi-die cut-crossing penalty weight (the "multidie.cutWeight"
     * knob): initial weight of the cut penalty relative to the
     * wirelength gradient, like freqWeight. 0 disables the term; it is
     * also inert unless the netlist carries an active die spec. Grows
     * on the frequency-penalty schedule (freqLambdaGrowth, capped at
     * freqLambdaMaxFactor x initial).
     */
    double cutWeight = 0.0;

    /**
     * Stop early when the density overflow has not improved for this
     * many iterations (the plateau means the penalty equilibrium is
     * reached).
     */
    int patience = 250;

    /** Detuning threshold Delta_c for the collision map. */
    double detuningThresholdHz = kDetuningThresholdHz;

    /**
     * Worker threads for the density/DCT hot path (0 = hardware
     * concurrency, capped; 1 = serial). Results are bitwise-
     * deterministic for a fixed thread count and match across thread
     * counts within floating-point tolerance.
     */
    int threads = 0;

    /** RNG seed for the initial-placement jitter. */
    std::uint64_t seed = 1;

    /** Initial-placement jitter as a fraction of region size. */
    double jitterFrac = 0.003;
};

} // namespace qplacer

#endif // QPLACER_CORE_PARAMS_HPP
