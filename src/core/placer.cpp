#include "core/placer.hpp"

#include <vector>

#include "core/nesterov.hpp"
#include "core/objective.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace qplacer {

GlobalPlacer::GlobalPlacer(PlacerParams params)
    : params_(params)
{
}

PlaceResult
GlobalPlacer::place(Netlist &netlist) const
{
    // One pool for the whole run; every model shares it so the hot
    // path never spawns threads mid-iteration.
    ThreadPool pool(params_.threads);
    return place(netlist, pool.threads() > 1 ? &pool : nullptr);
}

PlaceResult
GlobalPlacer::place(Netlist &netlist, ThreadPool *pool,
                    const PlaceMonitor &monitor) const
{
    Timer timer;
    PlaceResult result;

    const auto &instances = netlist.instances();
    const std::size_t n = instances.size();
    if (n == 0)
        fatal("GlobalPlacer: empty netlist");

    // Initial positions: the builder's warm start plus a small jitter to
    // break exact symmetries (stacked segments).
    Rng rng(params_.seed);
    std::vector<Vec2> positions(n);
    const double jitter =
        params_.jitterFrac * netlist.region().width();
    for (std::size_t i = 0; i < n; ++i) {
        positions[i] = instances[i].pos +
                       Vec2(rng.gaussian(0.0, jitter),
                            rng.gaussian(0.0, jitter));
    }

    std::vector<Vec2> half_sizes(n);
    for (std::size_t i = 0; i < n; ++i) {
        half_sizes[i] = Vec2(instances[i].paddedWidth() / 2.0,
                             instances[i].paddedHeight() / 2.0);
    }

    ThreadPool *pool_ptr = pool && pool->threads() > 1 ? pool : nullptr;

    PlacementObjective objective(netlist, params_, pool_ptr);
    NesterovOptimizer optimizer(netlist.region(), half_sizes, 0.05,
                                pool_ptr);
    optimizer.reset(positions);
    objective.initPenalties(optimizer.lookahead());

    std::vector<Vec2> gradient;
    double overflow = 1.0;
    double best_overflow = 1.0;
    int since_improvement = 0;
    int iter = 0;
    for (; iter < params_.maxIters; ++iter) {
        // Cooperative cancellation: poll at the top so a cancelled run
        // never pays for another full objective evaluation.
        if (monitor.cancel && monitor.cancel->cancelled()) {
            result.cancelled = true;
            break;
        }
        objective.updateGamma(overflow);
        objective.evaluate(optimizer.lookahead(), gradient);
        overflow = objective.overflow();

        if (monitor.onIteration) {
            monitor.onIteration({iter, overflow, objective.lambda(),
                                 objective.freqLambda(),
                                 objective.hpwl(optimizer.lookahead())});
        }

        if (iter >= params_.minIters && overflow < params_.stopOverflow) {
            result.converged = true;
            break;
        }
        // Plateau detection: the penalty equilibrium has been reached
        // and further iterations only churn the layout.
        if (overflow < best_overflow - 1e-3) {
            best_overflow = overflow;
            since_improvement = 0;
        } else if (++since_improvement >= params_.patience &&
                   iter >= params_.minIters) {
            break;
        }
        optimizer.step(gradient);
        objective.growPenalties();
    }

    const auto &solution = optimizer.solution();
    for (std::size_t i = 0; i < n; ++i)
        netlist.instance(static_cast<int>(i)).pos = solution[i];
    netlist.clampIntoRegion();

    result.iterations = iter;
    result.finalOverflow = overflow;
    result.finalHpwl = objective.hpwl(solution);
    result.seconds = timer.seconds();
    debug(str("global place: ", result.iterations, " iters, overflow ",
              result.finalOverflow, ", HPWL ", result.finalHpwl));
    return result;
}

} // namespace qplacer
