#include "core/objective.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace qplacer {

namespace {

double
l1Norm(ThreadPool *pool, const std::vector<Vec2> &g)
{
    return parallelReduce(
        pool, g.size(),
        [&](std::size_t begin, std::size_t end) {
            double acc = 0.0;
            for (std::size_t i = begin; i < end; ++i)
                acc += std::abs(g[i].x) + std::abs(g[i].y);
            return acc;
        },
        ThreadPool::kGrainFine);
}

} // namespace

PlacementObjective::PlacementObjective(const Netlist &netlist,
                                       const PlacerParams &params,
                                       ThreadPool *pool)
    : netlist_(netlist),
      params_(params),
      pool_(pool),
      wirelength_(netlist,
                  std::max(1e-3, params.gammaFrac *
                                     netlist.region().width()),
                  pool),
      density_(netlist,
               params.bins > 0
                   ? params.bins
                   : DensityModel::autoBinCount(netlist.numInstances()),
               params.targetDensity, pool)
{
    if (params.freqForce) {
        freqForce_ = std::make_unique<FreqForceModel>(
            netlist, params.detuningThresholdHz,
            params.freqCutoffFactor, pool_);
    }
    if (params.cutWeight > 0.0 && netlist.dieSpec().active()) {
        cutPenalty_ = std::make_unique<CutPenaltyModel>(
            netlist, DiePlan::resolve(netlist.dieSpec(),
                                      netlist.region()));
    }
    gammaBase_ = density_.grid().binWidth();

    netDegree_.assign(netlist.instances().size(), 0.0);
    for (const Net &net : netlist.nets()) {
        netDegree_[net.a] += net.weight;
        netDegree_[net.b] += net.weight;
    }
}

PlacementObjective::Components
PlacementObjective::evaluate(const std::vector<Vec2> &positions,
                             std::vector<Vec2> &gradient)
{
    Components out;
    out.wirelength = wirelength_.evaluate(positions, gradWl_);
    out.density = density_.evaluate(positions, gradDen_);
    if (freqForce_) {
        out.freq = freqForce_->evaluate(positions, gradFreq_);
        // The truncated force is often dormant at the warm start (all
        // pairs isolated); initialize its penalty weight the first time
        // it produces a gradient.
        if (!freqLambdaLive_) {
            const double fr_norm = l1Norm(pool_, gradFreq_);
            if (fr_norm > 1e-12) {
                freqLambda_ =
                    params_.freqWeight * l1Norm(pool_, gradWl_) / fr_norm;
                freqLambdaInit_ = freqLambda_;
                freqLambdaLive_ = true;
            }
        }
    } else {
        gradFreq_.assign(positions.size(), Vec2());
    }
    if (cutPenalty_) {
        out.cut = cutPenalty_->evaluate(positions, gradCut_);
        // Same lazy initialization as the frequency force: the penalty
        // weight is meaningless until some net actually crosses a cut.
        if (!cutLambdaLive_) {
            const double cut_norm = l1Norm(pool_, gradCut_);
            if (cut_norm > 1e-12) {
                cutLambda_ = params_.cutWeight * l1Norm(pool_, gradWl_) /
                             cut_norm;
                cutLambdaInit_ = cutLambda_;
                cutLambdaLive_ = true;
            }
        }
    }

    out.total =
        out.wirelength + lambda_ * out.density + freqLambda_ * out.freq;
    if (cutPenalty_)
        out.total += cutLambda_ * out.cut;

    gradient.assign(positions.size(), Vec2());
    const auto &instances = netlist_.instances();
    const bool with_cut = cutPenalty_ != nullptr;
    parallelFor(
        pool_, positions.size(),
        [&](std::size_t begin, std::size_t end) {
            for (std::size_t i = begin; i < end; ++i) {
                Vec2 g = gradWl_[i] + gradDen_[i] * lambda_ +
                         gradFreq_[i] * freqLambda_;
                // Guarded so single-die runs combine the exact same FP
                // expression as before (adding a 0.0 term could still
                // flip signed zeros).
                if (with_cut)
                    g = g + gradCut_[i] * cutLambda_;
                // Jacobi preconditioner (ePlace): net degree + lambda *
                // charge.
                const double h = std::max(
                    1.0,
                    netDegree_[i] + lambda_ * instances[i].paddedArea());
                gradient[i] = g / h;
            }
        },
        ThreadPool::kGrainFine);
    return out;
}

void
PlacementObjective::initPenalties(const std::vector<Vec2> &positions)
{
    wirelength_.evaluate(positions, gradWl_);
    density_.evaluate(positions, gradDen_);
    const double wl_norm = l1Norm(pool_, gradWl_);
    const double den_norm = l1Norm(pool_, gradDen_);
    lambda_ = den_norm > 1e-12 ? wl_norm / den_norm : 0.0;

    freqLambda_ = 0.0;
    freqLambdaLive_ = false;
    wlGradNorm_ = wl_norm;
    if (freqForce_) {
        freqForce_->evaluate(positions, gradFreq_);
        const double fr_norm = l1Norm(pool_, gradFreq_);
        if (fr_norm > 1e-12) {
            freqLambda_ = params_.freqWeight * wl_norm / fr_norm;
            freqLambdaInit_ = freqLambda_;
            freqLambdaLive_ = true;
        }
    }

    cutLambda_ = 0.0;
    cutLambdaLive_ = false;
    if (cutPenalty_) {
        cutPenalty_->evaluate(positions, gradCut_);
        const double cut_norm = l1Norm(pool_, gradCut_);
        if (cut_norm > 1e-12) {
            cutLambda_ = params_.cutWeight * wl_norm / cut_norm;
            cutLambdaInit_ = cutLambda_;
            cutLambdaLive_ = true;
        }
    }
}

void
PlacementObjective::growPenalties()
{
    lambda_ *= params_.lambdaGrowth;
    if (freqLambdaLive_) {
        const double cap =
            freqLambdaInit_ * params_.freqLambdaMaxFactor;
        freqLambda_ =
            std::min(freqLambda_ * params_.freqLambdaGrowth, cap);
    }
    if (cutLambdaLive_) {
        const double cap = cutLambdaInit_ * params_.freqLambdaMaxFactor;
        cutLambda_ =
            std::min(cutLambda_ * params_.freqLambdaGrowth, cap);
    }
}

void
PlacementObjective::updateGamma(double overflow)
{
    // Large overflow -> heavy smoothing (stable global view); as the
    // design spreads, sharpen toward true HPWL.
    const double gamma =
        gammaBase_ * (1.0 + 9.0 * std::clamp(overflow, 0.0, 1.0));
    wirelength_.setGamma(gamma);
}

double
PlacementObjective::hpwl(const std::vector<Vec2> &positions) const
{
    return wirelength_.hpwl(positions);
}

} // namespace qplacer
