#include "core/freq_force.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace qplacer {

FreqForceModel::FreqForceModel(const Netlist &netlist, double threshold_hz,
                               double cutoff_factor, ThreadPool *pool)
    : netlist_(netlist),
      map_(netlist.frequencies(), netlist.resonatorGroups(), threshold_hz),
      cutoffFactor_(cutoff_factor),
      pool_(pool)
{
    if (cutoff_factor <= 0.0)
        fatal("FreqForceModel: non-positive cutoff factor");
    charge_.resize(netlist.instances().size());
    for (std::size_t i = 0; i < charge_.size(); ++i)
        charge_[i] = std::sqrt(netlist.instances()[i].paddedArea());
}

double
FreqForceModel::evaluate(const std::vector<Vec2> &positions,
                         std::vector<Vec2> &gradient) const
{
    if (positions.size() != charge_.size())
        panic("FreqForceModel::evaluate: position count mismatch");
    gradient.assign(positions.size(), Vec2());

    // Each unordered pair is handled once, by its lower index i; pairs
    // are chunked over i, with per-chunk gradient slices so the writes
    // to both endpoints never collide across threads.
    const std::size_t n = positions.size();
    const int chunks =
        parallelChunkCount(pool_, n, ThreadPool::kGrainMedium);
    Vec2 *scratch = nullptr;
    if (chunks > 1) {
        gradScratch_.assign(static_cast<std::size_t>(chunks) * n, Vec2());
        scratch = gradScratch_.data();
    }
    std::vector<double> partial(static_cast<std::size_t>(chunks), 0.0);

    parallelForChunks(
        pool_, n,
        [&](int chunk, std::size_t begin, std::size_t end) {
            Vec2 *g = chunks == 1
                          ? gradient.data()
                          : scratch + static_cast<std::size_t>(chunk) * n;
            double potential = 0.0;
            for (std::size_t i = begin; i < end; ++i) {
                for (std::int32_t j : map_.partners(i)) {
                    if (static_cast<std::size_t>(j) <= i)
                        continue; // handle each unordered pair once
                    const double s = charge_[i] * charge_[j];
                    const double radius =
                        cutoffFactor_ * (charge_[i] + charge_[j]);
                    Vec2 delta = positions[i] - positions[j];
                    double d = delta.norm();
                    if (d >= radius)
                        continue; // already spatially isolated
                    // Clamp so coincident instances still get a finite,
                    // directed push (deterministic tie-break direction
                    // from the indices).
                    const double d_min =
                        0.25 * (charge_[i] + charge_[j]);
                    if (d < 1e-9) {
                        const double ang = 0.7548776662 *
                                           static_cast<double>(i * 31 + j);
                        delta = Vec2(std::cos(ang), std::sin(ang)) * d_min;
                        d = d_min;
                    } else if (d < d_min) {
                        delta = delta * (d_min / d);
                        d = d_min;
                    }
                    potential += s * (1.0 / d - 1.0 / radius);
                    // dU/dx_i = -s (x_i - x_j) / d^3.
                    const double coef = -s / (d * d * d);
                    g[i] += delta * coef;
                    g[j] -= delta * coef;
                }
            }
            partial[chunk] = potential;
        },
        ThreadPool::kGrainMedium);

    if (chunks > 1) {
        parallelFor(
            pool_, n,
            [&](std::size_t begin, std::size_t end) {
                for (std::size_t i = begin; i < end; ++i) {
                    Vec2 acc;
                    for (int c = 0; c < chunks; ++c)
                        acc += scratch[static_cast<std::size_t>(c) * n +
                                       i];
                    gradient[i] = acc;
                }
            },
            ThreadPool::kGrainFine);
    }
    double total = 0.0;
    for (double p : partial)
        total += p;
    return total;
}

} // namespace qplacer
