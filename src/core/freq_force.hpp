/**
 * @file
 * Frequency repulsive force F(i, j; x, y) (Eq. 9/10).
 *
 * Near-resonant instance pairs (from the precomputed collision map,
 * same-resonator pairs excluded) repel each other with a Coulomb 1/r
 * potential, so minimizing the penalty drives them apart spatially.
 */

#ifndef QPLACER_CORE_FREQ_FORCE_HPP
#define QPLACER_CORE_FREQ_FORCE_HPP

#include <vector>

#include "freq/collision_map.hpp"
#include "geometry/vec2.hpp"
#include "netlist/netlist.hpp"

namespace qplacer {

class ThreadPool;

/** Coulomb-style repulsion between near-resonant instances. */
class FreqForceModel
{
  public:
    /**
     * @param netlist       Netlist (kept by reference).
     * @param threshold_hz  Detuning threshold Delta_c.
     * @param cutoff_factor Pairs further apart than
     *                      cutoff_factor * (size_i + size_j) feel no
     *                      force; this truncation keeps the repulsion a
     *                      local separation constraint instead of a
     *                      long-range scatter force.
     *
     * The per-pair strength is scaled by the geometric mean of the two
     * padded footprints so that large components repel proportionally.
     *
     * @param pool Worker pool (null = serial; not owned). Pairs are
     *             chunked by their lower instance index and per-chunk
     *             gradients reduced in chunk order, deterministic for a
     *             fixed thread count.
     */
    FreqForceModel(const Netlist &netlist, double threshold_hz,
                   double cutoff_factor = 0.75,
                   ThreadPool *pool = nullptr);

    /**
     * Truncated Coulomb potential
     *   U = sum_pairs s_ij * (1/dist - 1/R_ij)  for dist < R_ij
     * and its gradient. Distances are clamped below at a fraction of
     * the instance size to keep the force finite when instances
     * coincide.
     */
    double evaluate(const std::vector<Vec2> &positions,
                    std::vector<Vec2> &gradient) const;

    /** The collision map the force iterates over. */
    const CollisionMap &collisionMap() const { return map_; }

  private:
    const Netlist &netlist_;
    CollisionMap map_;
    std::vector<double> charge_; ///< Per-instance repulsion scale.
    double cutoffFactor_;
    ThreadPool *pool_;
    /** Per-chunk gradient scatter buffers (chunks x instances). */
    mutable std::vector<Vec2> gradScratch_;
};

} // namespace qplacer

#endif // QPLACER_CORE_FREQ_FORCE_HPP
