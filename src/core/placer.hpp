/**
 * @file
 * Global placement driver (Fig. 7c): runs the frequency-aware
 * electrostatic engine over a netlist until the density overflow target
 * is met, writing optimized positions back into the netlist.
 */

#ifndef QPLACER_CORE_PLACER_HPP
#define QPLACER_CORE_PLACER_HPP

#include <functional>

#include "core/params.hpp"
#include "netlist/netlist.hpp"
#include "util/cancel.hpp"

namespace qplacer {

class ThreadPool;

/** Outcome of a global placement run. */
struct PlaceResult
{
    int iterations = 0;
    double finalOverflow = 1.0;
    double finalHpwl = 0.0;
    double seconds = 0.0;
    bool converged = false;
    bool cancelled = false; ///< Stopped early by a CancelToken.
};

/** Per-iteration progress snapshot delivered to a PlaceMonitor. */
struct PlaceProgress
{
    int iteration = 0;       ///< 0-based Nesterov iteration index.
    double overflow = 1.0;   ///< Density overflow after evaluate().
    double lambda = 0.0;     ///< Current density penalty weight.
    double freqLambda = 0.0; ///< Current frequency penalty weight.
    /**
     * Exact HPWL of the iterate the objective just evaluated. Only
     * computed when a monitor is attached (an extra O(nets) reduction
     * per iteration); 0 otherwise. Portfolio pruning ranks candidate
     * trajectories on (overflow, hpwl) snapshots.
     */
    double hpwl = 0.0;
};

/**
 * Optional hooks into the optimization loop: an iteration callback
 * (invoked once per iteration, after the objective evaluation) and a
 * cooperative cancellation token polled at the top of each iteration.
 * Both are borrowed pointers/functions and must outlive place().
 */
struct PlaceMonitor
{
    std::function<void(const PlaceProgress &)> onIteration;
    const CancelToken *cancel = nullptr;
};

/** The frequency-aware electrostatic global placer. */
class GlobalPlacer
{
  public:
    explicit GlobalPlacer(PlacerParams params = {});

    /**
     * Place @p netlist in-place: instance positions are updated to the
     * optimized (pre-legalization) solution. Owns a private worker pool
     * sized from params().threads for the duration of the call.
     */
    PlaceResult place(Netlist &netlist) const;

    /**
     * place() with an injected worker pool (null = serial, regardless
     * of params().threads) and optional monitor hooks. Sessions pass a
     * long-lived pool here so repeated placements never re-spawn
     * threads; results are bitwise-identical to the owning overload
     * whenever the pool size matches the resolved params().threads.
     * On cancellation the current (last-iterate) solution is written
     * back and the result carries cancelled = true.
     */
    PlaceResult place(Netlist &netlist, ThreadPool *pool,
                      const PlaceMonitor &monitor = {}) const;

    const PlacerParams &params() const { return params_; }

  private:
    PlacerParams params_;
};

} // namespace qplacer

#endif // QPLACER_CORE_PLACER_HPP
