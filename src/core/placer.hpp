/**
 * @file
 * Global placement driver (Fig. 7c): runs the frequency-aware
 * electrostatic engine over a netlist until the density overflow target
 * is met, writing optimized positions back into the netlist.
 */

#ifndef QPLACER_CORE_PLACER_HPP
#define QPLACER_CORE_PLACER_HPP

#include "core/params.hpp"
#include "netlist/netlist.hpp"

namespace qplacer {

/** Outcome of a global placement run. */
struct PlaceResult
{
    int iterations = 0;
    double finalOverflow = 1.0;
    double finalHpwl = 0.0;
    double seconds = 0.0;
    bool converged = false;
};

/** The frequency-aware electrostatic global placer. */
class GlobalPlacer
{
  public:
    explicit GlobalPlacer(PlacerParams params = {});

    /**
     * Place @p netlist in-place: instance positions are updated to the
     * optimized (pre-legalization) solution.
     */
    PlaceResult place(Netlist &netlist) const;

    const PlacerParams &params() const { return params_; }

  private:
    PlacerParams params_;
};

} // namespace qplacer

#endif // QPLACER_CORE_PLACER_HPP
