#include "core/poisson.hpp"

#include <numbers>

#include "math/dct.hpp"
#include "math/fft.hpp"
#include "math/plan_cache.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace qplacer {

PoissonSolver::PoissonSolver(int nx, int ny, double width, double height,
                             ThreadPool *pool, Path path)
    : nx_(nx), ny_(ny), width_(width), height_(height), pool_(pool),
      path_(path)
{
    if (!Fft::isPowerOfTwo(static_cast<std::size_t>(nx)) ||
        !Fft::isPowerOfTwo(static_cast<std::size_t>(ny))) {
        panic(str("PoissonSolver: grid ", nx, "x", ny,
                  " must be powers of two"));
    }
    if (width <= 0.0 || height <= 0.0)
        panic("PoissonSolver: non-positive physical size");

    wu_.resize(nx);
    wv_.resize(ny);
    for (int u = 0; u < nx; ++u)
        wu_[u] = std::numbers::pi * u / width;
    for (int v = 0; v < ny; ++v)
        wv_[v] = std::numbers::pi * v / height;

    // One plan per transform length, shared process-wide; solvers on
    // the same grid size all execute from the same tables.
    rowPlan_ = PlanCache::dct(static_cast<std::size_t>(nx));
    colPlan_ = PlanCache::dct(static_cast<std::size_t>(ny));
}

PoissonSolver::Solution
PoissonSolver::solve(const std::vector<double> &density) const
{
    const std::size_t cells = static_cast<std::size_t>(nx_) * ny_;
    if (density.size() != cells)
        panic("PoissonSolver::solve: density map size mismatch");

    // Row/column transform passes on the selected execution path (the
    // two are bitwise-identical; Unplanned is the benchmark baseline).
    const auto rows = [&](std::vector<double> &map, Dct::Kind kind) {
        if (path_ == Path::Planned)
            rowPlan_->transformRows(map, nx_, ny_, kind, pool_,
                                    scratch_);
        else
            Dct::transformRowsUnplanned(map, nx_, ny_, kind, pool_);
    };
    const auto cols = [&](std::vector<double> &map, Dct::Kind kind) {
        if (path_ == Path::Planned)
            colPlan_->transformCols(map, nx_, ny_, kind, pool_,
                                    scratch_);
        else
            Dct::transformColsUnplanned(map, nx_, ny_, kind, pool_);
    };

    // Forward 2-D DCT of the density -> eigenbasis coefficients.
    std::vector<double> coeff = density;
    rows(coeff, Dct::Kind::Dct2);
    cols(coeff, Dct::Kind::Dct2);
    const double norm = 1.0 / (static_cast<double>(nx_) * ny_);
    parallelFor(
        pool_, cells,
        [&](std::size_t begin, std::size_t end) {
            for (std::size_t i = begin; i < end; ++i)
                coeff[i] *= norm;
        },
        ThreadPool::kGrainFine);

    // Divide by the Laplacian eigenvalues; drop the DC term.
    std::vector<double> psi_coeff(cells, 0.0);
    parallelFor(
        pool_, cells,
        [&](std::size_t begin, std::size_t end) {
            for (std::size_t i = begin; i < end; ++i) {
                const int u = static_cast<int>(i % nx_);
                const int v = static_cast<int>(i / nx_);
                if (u == 0 && v == 0)
                    continue;
                const double w2 = wu_[u] * wu_[u] + wv_[v] * wv_[v];
                psi_coeff[i] = coeff[i] / w2;
            }
        },
        ThreadPool::kGrainFine);

    Solution sol;

    // Potential psi.
    sol.potential = psi_coeff;
    rows(sol.potential, Dct::Kind::CosSeries);
    cols(sol.potential, Dct::Kind::CosSeries);

    // Field xi_x: sine series in x of (w_u * psi_coeff).
    sol.fieldX.assign(cells, 0.0);
    parallelFor(
        pool_, cells,
        [&](std::size_t begin, std::size_t end) {
            for (std::size_t i = begin; i < end; ++i)
                sol.fieldX[i] = wu_[i % nx_] * psi_coeff[i];
        },
        ThreadPool::kGrainFine);
    rows(sol.fieldX, Dct::Kind::SinSeries);
    cols(sol.fieldX, Dct::Kind::CosSeries);

    // Field xi_y: sine series in y of (w_v * psi_coeff).
    sol.fieldY.assign(cells, 0.0);
    parallelFor(
        pool_, cells,
        [&](std::size_t begin, std::size_t end) {
            for (std::size_t i = begin; i < end; ++i)
                sol.fieldY[i] = wv_[i / nx_] * psi_coeff[i];
        },
        ThreadPool::kGrainFine);
    rows(sol.fieldY, Dct::Kind::CosSeries);
    cols(sol.fieldY, Dct::Kind::SinSeries);

    return sol;
}

} // namespace qplacer
