#include "core/poisson.hpp"

#include <numbers>

#include "math/dct.hpp"
#include "math/fft.hpp"
#include "util/logging.hpp"

namespace qplacer {

PoissonSolver::PoissonSolver(int nx, int ny, double width, double height)
    : nx_(nx), ny_(ny), width_(width), height_(height)
{
    if (!Fft::isPowerOfTwo(static_cast<std::size_t>(nx)) ||
        !Fft::isPowerOfTwo(static_cast<std::size_t>(ny))) {
        panic(str("PoissonSolver: grid ", nx, "x", ny,
                  " must be powers of two"));
    }
    if (width <= 0.0 || height <= 0.0)
        panic("PoissonSolver: non-positive physical size");

    wu_.resize(nx);
    wv_.resize(ny);
    for (int u = 0; u < nx; ++u)
        wu_[u] = std::numbers::pi * u / width;
    for (int v = 0; v < ny; ++v)
        wv_[v] = std::numbers::pi * v / height;
}

template <typename Fn>
void
PoissonSolver::transformRows(std::vector<double> &map, Fn &&fn) const
{
    std::vector<double> row(nx_);
    for (int iy = 0; iy < ny_; ++iy) {
        double *base = map.data() + static_cast<std::size_t>(iy) * nx_;
        row.assign(base, base + nx_);
        const std::vector<double> out = fn(row);
        for (int ix = 0; ix < nx_; ++ix)
            base[ix] = out[ix];
    }
}

template <typename Fn>
void
PoissonSolver::transformCols(std::vector<double> &map, Fn &&fn) const
{
    std::vector<double> col(ny_);
    for (int ix = 0; ix < nx_; ++ix) {
        for (int iy = 0; iy < ny_; ++iy)
            col[iy] = map[static_cast<std::size_t>(iy) * nx_ + ix];
        const std::vector<double> out = fn(col);
        for (int iy = 0; iy < ny_; ++iy)
            map[static_cast<std::size_t>(iy) * nx_ + ix] = out[iy];
    }
}

PoissonSolver::Solution
PoissonSolver::solve(const std::vector<double> &density) const
{
    const std::size_t cells = static_cast<std::size_t>(nx_) * ny_;
    if (density.size() != cells)
        panic("PoissonSolver::solve: density map size mismatch");

    // Forward 2-D DCT of the density -> eigenbasis coefficients.
    std::vector<double> coeff = density;
    transformRows(coeff, [](const std::vector<double> &v) {
        return Dct::dct2(v);
    });
    transformCols(coeff, [](const std::vector<double> &v) {
        return Dct::dct2(v);
    });
    const double norm = 1.0 / (static_cast<double>(nx_) * ny_);
    for (double &c : coeff)
        c *= norm;

    // Divide by the Laplacian eigenvalues; drop the DC term.
    std::vector<double> psi_coeff(cells, 0.0);
    for (int v = 0; v < ny_; ++v) {
        for (int u = 0; u < nx_; ++u) {
            if (u == 0 && v == 0)
                continue;
            const double w2 = wu_[u] * wu_[u] + wv_[v] * wv_[v];
            psi_coeff[static_cast<std::size_t>(v) * nx_ + u] =
                coeff[static_cast<std::size_t>(v) * nx_ + u] / w2;
        }
    }

    Solution sol;

    // Potential psi.
    sol.potential = psi_coeff;
    transformRows(sol.potential, [](const std::vector<double> &v) {
        return Dct::cosSeries(v);
    });
    transformCols(sol.potential, [](const std::vector<double> &v) {
        return Dct::cosSeries(v);
    });

    // Field xi_x: sine series in x of (w_u * psi_coeff).
    sol.fieldX.assign(cells, 0.0);
    for (int v = 0; v < ny_; ++v) {
        for (int u = 0; u < nx_; ++u) {
            sol.fieldX[static_cast<std::size_t>(v) * nx_ + u] =
                wu_[u] * psi_coeff[static_cast<std::size_t>(v) * nx_ + u];
        }
    }
    transformRows(sol.fieldX, [](const std::vector<double> &v) {
        return Dct::sinSeries(v);
    });
    transformCols(sol.fieldX, [](const std::vector<double> &v) {
        return Dct::cosSeries(v);
    });

    // Field xi_y: sine series in y of (w_v * psi_coeff).
    sol.fieldY.assign(cells, 0.0);
    for (int v = 0; v < ny_; ++v) {
        for (int u = 0; u < nx_; ++u) {
            sol.fieldY[static_cast<std::size_t>(v) * nx_ + u] =
                wv_[v] * psi_coeff[static_cast<std::size_t>(v) * nx_ + u];
        }
    }
    transformRows(sol.fieldY, [](const std::vector<double> &v) {
        return Dct::cosSeries(v);
    });
    transformCols(sol.fieldY, [](const std::vector<double> &v) {
        return Dct::sinSeries(v);
    });

    return sol;
}

} // namespace qplacer
