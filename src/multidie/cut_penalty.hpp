/**
 * @file
 * Differentiable cut-crossing penalty for multi-die global placement.
 *
 * For each 2-pin net and each cut line, a crossing contributes a hinge
 * product: with endpoint coordinates a, b on the axis crossing a cut
 * at c,
 *
 *   f = w * max(0, -(a - c) * (b - c)) / L
 *
 * (L the region extent on that axis, for unit sanity). f is zero when
 * both endpoints sit on the same side of the cut and grows with how
 * deep the net straddles it; the gradient pulls both endpoints toward
 * the cut until the net collapses onto one die. Plugged into the
 * penalty objective as lambda_cut * F alongside wirelength, density,
 * and the frequency force, with lambda_cut initialized lazily from
 * gradient-norm ratios exactly like the frequency penalty.
 */

#ifndef QPLACER_MULTIDIE_CUT_PENALTY_HPP
#define QPLACER_MULTIDIE_CUT_PENALTY_HPP

#include <vector>

#include "multidie/die_plan.hpp"
#include "netlist/netlist.hpp"

namespace qplacer {

/** Cut-crossing penalty term F(x, y) and its gradient. */
class CutPenaltyModel
{
  public:
    CutPenaltyModel(const Netlist &netlist, const DiePlan &plan);

    /**
     * Total penalty at @p positions; @p gradient is resized and
     * overwritten with dF/dposition per instance.
     */
    double evaluate(const std::vector<Vec2> &positions,
                    std::vector<Vec2> &gradient) const;

  private:
    const Netlist &netlist_;
    std::vector<CutLine> cuts_;
    double invWidth_;  ///< 1 / region width (vertical-cut scale).
    double invHeight_; ///< 1 / region height (horizontal-cut scale).
};

} // namespace qplacer

#endif // QPLACER_MULTIDIE_CUT_PENALTY_HPP
