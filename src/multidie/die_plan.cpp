#include "multidie/die_plan.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "util/logging.hpp"

namespace qplacer {

namespace {

/** Positive integer from [begin, end); false on any non-digit. */
bool
parsePositiveInt(const std::string &text, std::size_t begin,
                 std::size_t end, int &out)
{
    if (begin >= end)
        return false;
    long v = 0;
    for (std::size_t i = begin; i < end; ++i) {
        const char c = text[i];
        if (c < '0' || c > '9')
            return false;
        v = v * 10 + (c - '0');
        if (v > 4096)
            return false; // Far past any plausible die grid.
    }
    out = static_cast<int>(v);
    return v >= 1;
}

bool
failSpec(std::string *error, const std::string &message)
{
    if (error != nullptr)
        *error = message;
    return false;
}

} // namespace

bool
parseDieSpec(const std::string &text, DieSpec &out, std::string *error)
{
    DieSpec spec;
    std::string dims = text;
    const std::size_t colon = text.find(':');
    if (colon != std::string::npos) {
        dims = text.substr(0, colon);
        const std::string opt = text.substr(colon + 1);
        const std::string key = "cutGapUm=";
        if (opt.rfind(key, 0) != 0)
            return failSpec(error, "bad die spec '" + text +
                                       "': expected RxC[:cutGapUm=N]");
        const std::string value = opt.substr(key.size());
        if (value.empty())
            return failSpec(error, "bad die spec '" + text +
                                       "': empty cutGapUm value");
        char *end = nullptr;
        const double gap = std::strtod(value.c_str(), &end);
        if (end != value.c_str() + value.size() || !(gap > 0.0) ||
            !std::isfinite(gap))
            return failSpec(error, "bad die spec '" + text +
                                       "': cutGapUm must be a positive "
                                       "number");
        spec.cutGapUm = gap;
    }

    const std::size_t x = dims.find('x');
    if (x == std::string::npos ||
        !parsePositiveInt(dims, 0, x, spec.rows) ||
        !parsePositiveInt(dims, x + 1, dims.size(), spec.cols))
        return failSpec(error, "bad die spec '" + text +
                                   "': expected <rows>x<cols> with "
                                   "positive dimensions");
    out = spec;
    return true;
}

DiePlan
DiePlan::resolve(const DieSpec &spec, const Rect &region)
{
    DiePlan plan;
    plan.spec = spec;
    plan.region = region;

    const int rows = spec.rows;
    const int cols = spec.cols;
    const double gap = spec.cutGapUm;
    const double die_w = (region.width() - (cols - 1) * gap) / cols;
    const double die_h = (region.height() - (rows - 1) * gap) / rows;
    if (die_w <= 0.0 || die_h <= 0.0)
        panic(str("DiePlan: region ", region.width(), " x ",
                  region.height(), " um cannot fit ", rows, "x", cols,
                  " dies with ", gap, " um cut gaps"));

    plan.dies.reserve(static_cast<std::size_t>(rows) * cols);
    for (int r = 0; r < rows; ++r) {
        const double y0 = region.lo.y + r * (die_h + gap);
        for (int c = 0; c < cols; ++c) {
            const double x0 = region.lo.x + c * (die_w + gap);
            plan.dies.emplace_back(x0, y0, x0 + die_w, y0 + die_h);
        }
    }
    for (int c = 0; c + 1 < cols; ++c) {
        CutLine cut;
        cut.vertical = true;
        cut.coordUm = region.lo.x + (c + 1) * die_w + c * gap + gap / 2.0;
        plan.cuts.push_back(cut);
    }
    for (int r = 0; r + 1 < rows; ++r) {
        CutLine cut;
        cut.vertical = false;
        cut.coordUm = region.lo.y + (r + 1) * die_h + r * gap + gap / 2.0;
        plan.cuts.push_back(cut);
    }
    return plan;
}

int
DiePlan::dieAt(Vec2 p) const
{
    int best = 0;
    double best_dist = -1.0;
    for (std::size_t d = 0; d < dies.size(); ++d) {
        const Rect &die = dies[d];
        const double dx =
            std::max({die.lo.x - p.x, 0.0, p.x - die.hi.x});
        const double dy =
            std::max({die.lo.y - p.y, 0.0, p.y - die.hi.y});
        const double dist = dx * dx + dy * dy;
        if (best_dist < 0.0 || dist < best_dist) {
            best_dist = dist;
            best = static_cast<int>(d);
        }
    }
    return best;
}

std::vector<Rect>
DiePlan::gapBands() const
{
    std::vector<Rect> bands;
    const double gap = spec.cutGapUm;
    for (const CutLine &cut : cuts) {
        if (cut.vertical) {
            bands.emplace_back(cut.coordUm - gap / 2.0, region.lo.y,
                               cut.coordUm + gap / 2.0, region.hi.y);
        } else {
            bands.emplace_back(region.lo.x, cut.coordUm - gap / 2.0,
                               region.hi.x, cut.coordUm + gap / 2.0);
        }
    }
    return bands;
}

} // namespace qplacer
