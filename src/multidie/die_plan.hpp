/**
 * @file
 * Multi-die (chiplet) device partition model.
 *
 * A DieSpec describes a rows x cols grid of dies separated by straight
 * cut gaps (the interposer channels inter-die couplers cross); it is
 * carried symbolically on Topology and Netlist. A DiePlan is the spec
 * resolved against a concrete placement region: per-die rectangles,
 * cut lines, and the gap bands no footprint may occupy. Resolution is
 * on demand (DiePlan::resolve) so geometry follows region growth --
 * the legalizer's retry loop re-resolves instead of caching stale
 * rectangles.
 *
 * A 1x1 spec is *inactive*: every consumer skips its multi-die code
 * path entirely, keeping single-die flows bitwise-identical to a build
 * without any die spec at all.
 */

#ifndef QPLACER_MULTIDIE_DIE_PLAN_HPP
#define QPLACER_MULTIDIE_DIE_PLAN_HPP

#include <string>
#include <vector>

#include "geometry/rect.hpp"

namespace qplacer {

/** Symbolic device partition: a rows x cols die grid with cut gaps. */
struct DieSpec
{
    int rows = 1;
    int cols = 1;

    /** Width of the cut gap between adjacent dies (um). */
    double cutGapUm = 800.0;

    /** True when the device actually has more than one die. */
    bool active() const { return rows * cols > 1; }

    /** Total die count. */
    int numDies() const { return rows * cols; }
};

/**
 * Parse the "@dies=" suffix payload of a topology spec:
 * "RxC" or "RxC:cutGapUm=N" (e.g. "2x1:cutGapUm=800"). On failure
 * returns false with a message in @p error (if non-null).
 */
bool parseDieSpec(const std::string &text, DieSpec &out,
                  std::string *error = nullptr);

/** One straight cut through the device (the center line of a gap). */
struct CutLine
{
    bool vertical = true; ///< Vertical cut: separates columns (x = coord).
    double coordUm = 0.0; ///< Cut position on the crossing axis.
};

/** A DieSpec resolved against a concrete placement region. */
struct DiePlan
{
    DieSpec spec;
    Rect region;
    std::vector<Rect> dies;     ///< Row-major (row * cols + col).
    std::vector<CutLine> cuts;  ///< (cols - 1) vertical + (rows - 1) horiz.

    /**
     * Carve @p region into the spec's die grid. The gaps consume
     * (cols - 1) * cutGapUm of width and (rows - 1) * cutGapUm of
     * height; what remains is split evenly between the dies. panics if
     * the region cannot fit the gaps.
     */
    static DiePlan resolve(const DieSpec &spec, const Rect &region);

    /** True when this plan partitions into more than one die. */
    bool active() const { return spec.active(); }

    /**
     * Index of the die owning @p p: the die whose rectangle is nearest
     * (ties broken toward the lower index). Points inside a gap band
     * belong to the closer die, so a global-placement position may
     * always be mapped to an assignment.
     */
    int dieAt(Vec2 p) const;

    /**
     * The gap bands between adjacent dies -- the exclusion rects the
     * legalizer blocks so no footprint ever straddles a cut.
     */
    std::vector<Rect> gapBands() const;
};

} // namespace qplacer

#endif // QPLACER_MULTIDIE_DIE_PLAN_HPP
