#include "multidie/cut_penalty.hpp"

#include <algorithm>

namespace qplacer {

CutPenaltyModel::CutPenaltyModel(const Netlist &netlist, const DiePlan &plan)
    : netlist_(netlist),
      cuts_(plan.cuts),
      invWidth_(1.0 / std::max(plan.region.width(), 1e-9)),
      invHeight_(1.0 / std::max(plan.region.height(), 1e-9))
{
}

double
CutPenaltyModel::evaluate(const std::vector<Vec2> &positions,
                          std::vector<Vec2> &gradient) const
{
    gradient.assign(positions.size(), Vec2());
    double total = 0.0;
    for (const Net &net : netlist_.nets()) {
        const std::size_t a = static_cast<std::size_t>(net.a);
        const std::size_t b = static_cast<std::size_t>(net.b);
        for (const CutLine &cut : cuts_) {
            const double scale =
                net.weight * (cut.vertical ? invWidth_ : invHeight_);
            const double da = (cut.vertical ? positions[a].x
                                            : positions[a].y) -
                              cut.coordUm;
            const double db = (cut.vertical ? positions[b].x
                                            : positions[b].y) -
                              cut.coordUm;
            const double prod = da * db;
            if (prod >= 0.0)
                continue; // Same side of the cut: no penalty.
            total += -prod * scale;
            // d(-da*db)/da = -db (> 0 when da < 0): the gradient pushes
            // each endpoint toward -- and past -- the cut line.
            if (cut.vertical) {
                gradient[a].x += -db * scale;
                gradient[b].x += -da * scale;
            } else {
                gradient[a].y += -db * scale;
                gradient[b].y += -da * scale;
            }
        }
    }
    return total;
}

} // namespace qplacer
