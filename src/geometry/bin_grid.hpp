/**
 * @file
 * Uniform bin grid over the placement region.
 *
 * The density force rasterizes instance areas into this grid; the
 * legalizers reuse it as an occupancy map. Bin counts are powers of two so
 * the spectral Poisson solver can run FFT-based transforms directly on the
 * density map.
 */

#ifndef QPLACER_GEOMETRY_BIN_GRID_HPP
#define QPLACER_GEOMETRY_BIN_GRID_HPP

#include <vector>

#include "geometry/rect.hpp"

namespace qplacer {

/** 2-D grid of double-valued bins covering a rectangular region. */
class BinGrid
{
  public:
    /**
     * @param region  Placement region covered by the grid.
     * @param nx, ny  Bin counts (must be positive).
     */
    BinGrid(Rect region, int nx, int ny);

    int nx() const { return nx_; }
    int ny() const { return ny_; }
    const Rect &region() const { return region_; }
    double binWidth() const { return binW_; }
    double binHeight() const { return binH_; }
    double binArea() const { return binW_ * binH_; }

    /** Reset every bin to zero. */
    void clear();

    /** Value of bin (ix, iy); bounds-checked via panic. */
    double at(int ix, int iy) const;

    /** Mutable access to bin (ix, iy). */
    double &at(int ix, int iy);

    /** Row-major flat buffer (y-major: index = iy*nx + ix). */
    const std::vector<double> &data() const { return data_; }
    std::vector<double> &data() { return data_; }

    /** Bin x-index containing coordinate @p x, clamped into range. */
    int clampX(double x) const;

    /** Bin y-index containing coordinate @p y, clamped into range. */
    int clampY(double y) const;

    /** Rectangle of bin (ix, iy). */
    Rect binRect(int ix, int iy) const;

    /** Center of bin (ix, iy). */
    Vec2 binCenter(int ix, int iy) const;

    /**
     * Add @p amount distributed over the bins overlapping @p rect,
     * proportionally to overlap area. Parts of @p rect outside the region
     * are clamped onto the boundary bins so no charge is lost.
     */
    void splat(const Rect &rect, double amount);

    /**
     * Area-weighted average of the grid over @p rect (e.g. average
     * electric field over an instance footprint).
     */
    double sample(const Rect &rect) const;

    /** Sum over all bins. */
    double total() const;

  private:
    /** Clamp @p r into the region, preserving area by shifting. */
    Rect clampRect(const Rect &r) const;

    Rect region_;
    int nx_;
    int ny_;
    double binW_;
    double binH_;
    std::vector<double> data_;
};

} // namespace qplacer

#endif // QPLACER_GEOMETRY_BIN_GRID_HPP
