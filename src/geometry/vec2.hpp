/**
 * @file
 * 2-D vector type. All layout coordinates in the library are in
 * micrometers (um) stored as doubles.
 */

#ifndef QPLACER_GEOMETRY_VEC2_HPP
#define QPLACER_GEOMETRY_VEC2_HPP

#include <cmath>

namespace qplacer {

/** Plain 2-D vector/point in micrometers. */
struct Vec2
{
    double x = 0.0;
    double y = 0.0;

    Vec2() = default;
    Vec2(double x_, double y_) : x(x_), y(y_) {}

    Vec2 operator+(const Vec2 &o) const { return {x + o.x, y + o.y}; }
    Vec2 operator-(const Vec2 &o) const { return {x - o.x, y - o.y}; }
    Vec2 operator*(double s) const { return {x * s, y * s}; }
    Vec2 operator/(double s) const { return {x / s, y / s}; }

    Vec2 &
    operator+=(const Vec2 &o)
    {
        x += o.x;
        y += o.y;
        return *this;
    }

    Vec2 &
    operator-=(const Vec2 &o)
    {
        x -= o.x;
        y -= o.y;
        return *this;
    }

    bool operator==(const Vec2 &o) const { return x == o.x && y == o.y; }

    /** Euclidean norm. */
    double norm() const { return std::hypot(x, y); }

    /** Squared norm (avoids the sqrt in hot loops). */
    double normSq() const { return x * x + y * y; }

    /** Dot product. */
    double dot(const Vec2 &o) const { return x * o.x + y * o.y; }

    /** Euclidean distance to @p o. */
    double dist(const Vec2 &o) const { return (*this - o).norm(); }

    /** Manhattan distance to @p o. */
    double
    manhattan(const Vec2 &o) const
    {
        return std::abs(x - o.x) + std::abs(y - o.y);
    }
};

inline Vec2
operator*(double s, const Vec2 &v)
{
    return v * s;
}

} // namespace qplacer

#endif // QPLACER_GEOMETRY_VEC2_HPP
