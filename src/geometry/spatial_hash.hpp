/**
 * @file
 * Uniform-grid spatial hash for neighbour queries.
 *
 * The hotspot evaluator and the integration legalizer need "which
 * instances are near p" queries; this keeps them O(neighbours) instead of
 * all-pairs.
 */

#ifndef QPLACER_GEOMETRY_SPATIAL_HASH_HPP
#define QPLACER_GEOMETRY_SPATIAL_HASH_HPP

#include <cstdint>
#include <vector>

#include "geometry/rect.hpp"

namespace qplacer {

/** Buckets item ids by position on a uniform grid. */
class SpatialHash
{
  public:
    /**
     * @param region    Area covered (items outside are clamped in).
     * @param cell_size Bucket edge length; choose ~ the query radius.
     */
    SpatialHash(Rect region, double cell_size);

    /** Insert item @p id at @p pos. */
    void insert(std::int32_t id, Vec2 pos);

    /** Remove item @p id located at @p pos (no-op if absent). */
    void remove(std::int32_t id, Vec2 pos);

    /** Move an item between positions. */
    void move(std::int32_t id, Vec2 from, Vec2 to);

    /** Ids of items within @p radius of @p center (Euclidean). */
    std::vector<std::int32_t> query(Vec2 center, double radius) const;

    /** Ids of items whose position lies inside @p box. */
    std::vector<std::int32_t> queryRect(const Rect &box) const;

    /**
     * Ids of the @p k items nearest to @p center (Euclidean), nearest
     * first, ties broken by ascending id -- deterministic for a fixed
     * insertion set. Returns fewer than @p k ids when the hash holds
     * fewer items. Expands bucket rings outward and stops as soon as
     * the k-th best distance provably cannot improve, so the cost is
     * O(neighbourhood), not O(items). Powers the sparse candidate
     * edges of the min-cost-flow legalization refinement.
     */
    std::vector<std::int32_t> kNearest(Vec2 center, int k) const;

    /** Total number of stored items. */
    std::size_t size() const { return count_; }

  private:
    struct Entry
    {
        std::int32_t id;
        Vec2 pos;
    };

    std::size_t bucketOf(Vec2 pos) const;

    Rect region_;
    double cellSize_;
    int nx_;
    int ny_;
    std::vector<std::vector<Entry>> buckets_;
    std::size_t count_ = 0;
};

} // namespace qplacer

#endif // QPLACER_GEOMETRY_SPATIAL_HASH_HPP
