/**
 * @file
 * Axis-aligned rectangle and the overlap kernels used throughout the
 * placer (bin overlap, hotspot detection, legality checks).
 */

#ifndef QPLACER_GEOMETRY_RECT_HPP
#define QPLACER_GEOMETRY_RECT_HPP

#include <vector>

#include "geometry/vec2.hpp"

namespace qplacer {

/** Axis-aligned rectangle [lo.x, hi.x] x [lo.y, hi.y] in micrometers. */
struct Rect
{
    Vec2 lo;
    Vec2 hi;

    Rect() = default;
    Rect(Vec2 lo_, Vec2 hi_) : lo(lo_), hi(hi_) {}
    Rect(double x0, double y0, double x1, double y1)
        : lo(x0, y0), hi(x1, y1)
    {}

    /** Build a rectangle from its center and full width/height. */
    static Rect fromCenter(Vec2 center, double width, double height);

    double width() const { return hi.x - lo.x; }
    double height() const { return hi.y - lo.y; }
    double area() const { return width() * height(); }
    Vec2 center() const { return {(lo.x + hi.x) / 2, (lo.y + hi.y) / 2}; }

    /** True if width or height is non-positive. */
    bool empty() const { return hi.x <= lo.x || hi.y <= lo.y; }

    /** True if @p p lies inside (closed on lo, open on hi). */
    bool contains(Vec2 p) const;

    /** True if @p other lies entirely within this rectangle. */
    bool containsRect(const Rect &other) const;

    /** True if the two rectangles overlap with positive area. */
    bool overlaps(const Rect &other) const;

    /** Intersection rectangle (may be empty()). */
    Rect intersect(const Rect &other) const;

    /** Area of overlap with @p other (0 if disjoint). */
    double overlapArea(const Rect &other) const;

    /**
     * Length of the 1-D projection overlap between the two rectangles:
     * the longer side of the intersection box. This is the len(p_i, p_j)
     * term of the hotspot metric (Eq. 18) for touching/overlapping
     * padded footprints.
     */
    double overlapLength(const Rect &other) const;

    /** Minimum gap between the rectangles (0 if they touch/overlap). */
    double gap(const Rect &other) const;

    /** This rectangle grown by @p margin on every side. */
    Rect inflated(double margin) const;

    /** This rectangle translated by @p delta. */
    Rect translated(Vec2 delta) const;

    /** Smallest rectangle covering both. */
    Rect unionWith(const Rect &other) const;
};

/** Minimum enclosing rectangle of a set of rectangles (A_mer support). */
Rect boundingBox(const std::vector<Rect> &rects);

} // namespace qplacer

#endif // QPLACER_GEOMETRY_RECT_HPP
