#include "geometry/rect.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace qplacer {

Rect
Rect::fromCenter(Vec2 center, double width, double height)
{
    return Rect(center.x - width / 2, center.y - height / 2,
                center.x + width / 2, center.y + height / 2);
}

bool
Rect::contains(Vec2 p) const
{
    return p.x >= lo.x && p.x < hi.x && p.y >= lo.y && p.y < hi.y;
}

bool
Rect::containsRect(const Rect &other) const
{
    return other.lo.x >= lo.x && other.hi.x <= hi.x && other.lo.y >= lo.y &&
           other.hi.y <= hi.y;
}

bool
Rect::overlaps(const Rect &other) const
{
    return lo.x < other.hi.x && other.lo.x < hi.x && lo.y < other.hi.y &&
           other.lo.y < hi.y;
}

Rect
Rect::intersect(const Rect &other) const
{
    return Rect(std::max(lo.x, other.lo.x), std::max(lo.y, other.lo.y),
                std::min(hi.x, other.hi.x), std::min(hi.y, other.hi.y));
}

double
Rect::overlapArea(const Rect &other) const
{
    const Rect inter = intersect(other);
    if (inter.empty())
        return 0.0;
    return inter.area();
}

double
Rect::overlapLength(const Rect &other) const
{
    const double dx =
        std::min(hi.x, other.hi.x) - std::max(lo.x, other.lo.x);
    const double dy =
        std::min(hi.y, other.hi.y) - std::max(lo.y, other.lo.y);
    if (dx < 0.0 || dy < 0.0)
        return 0.0;
    return std::max(dx, dy);
}

double
Rect::gap(const Rect &other) const
{
    const double dx =
        std::max({0.0, other.lo.x - hi.x, lo.x - other.hi.x});
    const double dy =
        std::max({0.0, other.lo.y - hi.y, lo.y - other.hi.y});
    return std::hypot(dx, dy);
}

Rect
Rect::inflated(double margin) const
{
    return Rect(lo.x - margin, lo.y - margin, hi.x + margin, hi.y + margin);
}

Rect
Rect::translated(Vec2 delta) const
{
    return Rect(lo + delta, hi + delta);
}

Rect
Rect::unionWith(const Rect &other) const
{
    return Rect(std::min(lo.x, other.lo.x), std::min(lo.y, other.lo.y),
                std::max(hi.x, other.hi.x), std::max(hi.y, other.hi.y));
}

Rect
boundingBox(const std::vector<Rect> &rects)
{
    if (rects.empty())
        fatal("boundingBox: empty rectangle set");
    Rect box = rects.front();
    for (const Rect &r : rects)
        box = box.unionWith(r);
    return box;
}

} // namespace qplacer
