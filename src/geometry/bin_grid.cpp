#include "geometry/bin_grid.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace qplacer {

BinGrid::BinGrid(Rect region, int nx, int ny)
    : region_(region), nx_(nx), ny_(ny)
{
    if (nx <= 0 || ny <= 0)
        panic(str("BinGrid: non-positive bin count ", nx, "x", ny));
    if (region.empty())
        panic("BinGrid: empty region");
    binW_ = region.width() / nx;
    binH_ = region.height() / ny;
    data_.assign(static_cast<std::size_t>(nx) * ny, 0.0);
}

void
BinGrid::clear()
{
    std::fill(data_.begin(), data_.end(), 0.0);
}

double
BinGrid::at(int ix, int iy) const
{
    if (ix < 0 || ix >= nx_ || iy < 0 || iy >= ny_)
        panic(str("BinGrid::at out of range (", ix, ", ", iy, ")"));
    return data_[static_cast<std::size_t>(iy) * nx_ + ix];
}

double &
BinGrid::at(int ix, int iy)
{
    if (ix < 0 || ix >= nx_ || iy < 0 || iy >= ny_)
        panic(str("BinGrid::at out of range (", ix, ", ", iy, ")"));
    return data_[static_cast<std::size_t>(iy) * nx_ + ix];
}

int
BinGrid::clampX(double x) const
{
    const int ix = static_cast<int>(std::floor((x - region_.lo.x) / binW_));
    return std::clamp(ix, 0, nx_ - 1);
}

int
BinGrid::clampY(double y) const
{
    const int iy = static_cast<int>(std::floor((y - region_.lo.y) / binH_));
    return std::clamp(iy, 0, ny_ - 1);
}

Rect
BinGrid::binRect(int ix, int iy) const
{
    const double x0 = region_.lo.x + ix * binW_;
    const double y0 = region_.lo.y + iy * binH_;
    return Rect(x0, y0, x0 + binW_, y0 + binH_);
}

Vec2
BinGrid::binCenter(int ix, int iy) const
{
    return binRect(ix, iy).center();
}

Rect
BinGrid::clampRect(const Rect &r) const
{
    Rect out = r;
    // Shift (not clip) so the full charge stays on the grid; this mirrors
    // how the placer clamps instance centers into the region.
    if (out.lo.x < region_.lo.x)
        out = out.translated({region_.lo.x - out.lo.x, 0.0});
    if (out.hi.x > region_.hi.x)
        out = out.translated({region_.hi.x - out.hi.x, 0.0});
    if (out.lo.y < region_.lo.y)
        out = out.translated({0.0, region_.lo.y - out.lo.y});
    if (out.hi.y > region_.hi.y)
        out = out.translated({0.0, region_.hi.y - out.hi.y});
    // If the rect is larger than the region, fall back to clipping.
    return out.intersect(region_);
}

void
BinGrid::splat(const Rect &rect, double amount)
{
    const Rect r = clampRect(rect);
    if (r.empty())
        return;
    const double total_area = r.area();
    if (total_area <= 0.0)
        return;
    const int ix0 = clampX(r.lo.x);
    const int ix1 = clampX(r.hi.x - 1e-12);
    const int iy0 = clampY(r.lo.y);
    const int iy1 = clampY(r.hi.y - 1e-12);
    for (int iy = iy0; iy <= iy1; ++iy) {
        for (int ix = ix0; ix <= ix1; ++ix) {
            const double w = binRect(ix, iy).overlapArea(r) / total_area;
            if (w > 0.0)
                data_[static_cast<std::size_t>(iy) * nx_ + ix] +=
                    amount * w;
        }
    }
}

double
BinGrid::sample(const Rect &rect) const
{
    const Rect r = clampRect(rect);
    if (r.empty())
        return 0.0;
    const int ix0 = clampX(r.lo.x);
    const int ix1 = clampX(r.hi.x - 1e-12);
    const int iy0 = clampY(r.lo.y);
    const int iy1 = clampY(r.hi.y - 1e-12);
    double acc = 0.0;
    double wsum = 0.0;
    for (int iy = iy0; iy <= iy1; ++iy) {
        for (int ix = ix0; ix <= ix1; ++ix) {
            const double w = binRect(ix, iy).overlapArea(r);
            acc += w * data_[static_cast<std::size_t>(iy) * nx_ + ix];
            wsum += w;
        }
    }
    return wsum > 0.0 ? acc / wsum : 0.0;
}

double
BinGrid::total() const
{
    double acc = 0.0;
    for (double v : data_)
        acc += v;
    return acc;
}

} // namespace qplacer
