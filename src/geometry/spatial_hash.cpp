#include "geometry/spatial_hash.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace qplacer {

SpatialHash::SpatialHash(Rect region, double cell_size)
    : region_(region), cellSize_(cell_size)
{
    if (cell_size <= 0.0)
        panic("SpatialHash: non-positive cell size");
    if (region.empty())
        panic("SpatialHash: empty region");
    nx_ = std::max(1, static_cast<int>(
                          std::ceil(region.width() / cell_size)));
    ny_ = std::max(1, static_cast<int>(
                          std::ceil(region.height() / cell_size)));
    buckets_.resize(static_cast<std::size_t>(nx_) * ny_);
}

std::size_t
SpatialHash::bucketOf(Vec2 pos) const
{
    int ix = static_cast<int>((pos.x - region_.lo.x) / cellSize_);
    int iy = static_cast<int>((pos.y - region_.lo.y) / cellSize_);
    ix = std::clamp(ix, 0, nx_ - 1);
    iy = std::clamp(iy, 0, ny_ - 1);
    return static_cast<std::size_t>(iy) * nx_ + ix;
}

void
SpatialHash::insert(std::int32_t id, Vec2 pos)
{
    buckets_[bucketOf(pos)].push_back(Entry{id, pos});
    ++count_;
}

void
SpatialHash::remove(std::int32_t id, Vec2 pos)
{
    auto &bucket = buckets_[bucketOf(pos)];
    for (std::size_t i = 0; i < bucket.size(); ++i) {
        if (bucket[i].id == id) {
            bucket[i] = bucket.back();
            bucket.pop_back();
            --count_;
            return;
        }
    }
}

void
SpatialHash::move(std::int32_t id, Vec2 from, Vec2 to)
{
    remove(id, from);
    insert(id, to);
}

std::vector<std::int32_t>
SpatialHash::query(Vec2 center, double radius) const
{
    std::vector<std::int32_t> out;
    const double r2 = radius * radius;
    const int ix0 = std::clamp(
        static_cast<int>((center.x - radius - region_.lo.x) / cellSize_), 0,
        nx_ - 1);
    const int ix1 = std::clamp(
        static_cast<int>((center.x + radius - region_.lo.x) / cellSize_), 0,
        nx_ - 1);
    const int iy0 = std::clamp(
        static_cast<int>((center.y - radius - region_.lo.y) / cellSize_), 0,
        ny_ - 1);
    const int iy1 = std::clamp(
        static_cast<int>((center.y + radius - region_.lo.y) / cellSize_), 0,
        ny_ - 1);
    for (int iy = iy0; iy <= iy1; ++iy) {
        for (int ix = ix0; ix <= ix1; ++ix) {
            const auto &bucket =
                buckets_[static_cast<std::size_t>(iy) * nx_ + ix];
            for (const Entry &e : bucket) {
                if ((e.pos - center).normSq() <= r2)
                    out.push_back(e.id);
            }
        }
    }
    return out;
}

std::vector<std::int32_t>
SpatialHash::kNearest(Vec2 center, int k) const
{
    std::vector<std::int32_t> out;
    if (k <= 0 || count_ == 0)
        return out;

    const int cx = std::clamp(
        static_cast<int>((center.x - region_.lo.x) / cellSize_), 0,
        nx_ - 1);
    const int cy = std::clamp(
        static_cast<int>((center.y - region_.lo.y) / cellSize_), 0,
        ny_ - 1);

    std::vector<std::pair<double, std::int32_t>> cand; // (distSq, id)
    const int max_ring = std::max(nx_, ny_);
    for (int d = 0; d <= max_ring; ++d) {
        // Visit the ring of buckets at Chebyshev distance d.
        for (int iy = cy - d; iy <= cy + d; ++iy) {
            if (iy < 0 || iy >= ny_)
                continue;
            const bool edge_row = iy == cy - d || iy == cy + d;
            const int step = edge_row ? 1 : 2 * d;
            for (int ix = cx - d; ix <= cx + d;
                 ix += step > 0 ? step : 1) {
                if (ix < 0 || ix >= nx_)
                    continue;
                const auto &bucket =
                    buckets_[static_cast<std::size_t>(iy) * nx_ + ix];
                for (const Entry &e : bucket)
                    cand.emplace_back((e.pos - center).normSq(), e.id);
            }
        }
        if (cand.size() >= static_cast<std::size_t>(k)) {
            // Any item in an unvisited bucket is at least d * cell
            // away from the center; stop once the k-th best strictly
            // beats that lower bound (strict: an unvisited item at
            // exactly the bound could tie with a smaller id, and the
            // contract breaks ties by ascending id).
            std::nth_element(cand.begin(), cand.begin() + (k - 1),
                             cand.end());
            const double kth = cand[static_cast<std::size_t>(k - 1)].first;
            const double bound = static_cast<double>(d) * cellSize_;
            if (kth < bound * bound)
                break;
        }
    }

    const std::size_t keep =
        std::min(cand.size(), static_cast<std::size_t>(k));
    std::partial_sort(cand.begin(), cand.begin() + keep, cand.end());
    out.reserve(keep);
    for (std::size_t i = 0; i < keep; ++i)
        out.push_back(cand[i].second);
    return out;
}

std::vector<std::int32_t>
SpatialHash::queryRect(const Rect &box) const
{
    std::vector<std::int32_t> out;
    const int ix0 = std::clamp(
        static_cast<int>((box.lo.x - region_.lo.x) / cellSize_), 0, nx_ - 1);
    const int ix1 = std::clamp(
        static_cast<int>((box.hi.x - region_.lo.x) / cellSize_), 0, nx_ - 1);
    const int iy0 = std::clamp(
        static_cast<int>((box.lo.y - region_.lo.y) / cellSize_), 0, ny_ - 1);
    const int iy1 = std::clamp(
        static_cast<int>((box.hi.y - region_.lo.y) / cellSize_), 0, ny_ - 1);
    for (int iy = iy0; iy <= iy1; ++iy) {
        for (int ix = ix0; ix <= ix1; ++ix) {
            const auto &bucket =
                buckets_[static_cast<std::size_t>(iy) * nx_ + ix];
            for (const Entry &e : bucket) {
                if (box.contains(e.pos))
                    out.push_back(e.id);
            }
        }
    }
    return out;
}

} // namespace qplacer
