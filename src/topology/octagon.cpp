#include "topology/generators.hpp"

#include "util/logging.hpp"

namespace qplacer {

namespace {

// Octagon ring vertex offsets in ring order (unit octagon). Index
// semantics: 0,1 top; 2,3 right; 4,5 bottom; 6,7 left.
const double kOctOffsets[8][2] = {
    {0.35, 1.00}, {0.65, 1.00}, {1.00, 0.65}, {1.00, 0.35},
    {0.65, 0.00}, {0.35, 0.00}, {0.00, 0.35}, {0.00, 0.65},
};

} // namespace

Topology
makeOctagon(int rows, int cols)
{
    if (rows <= 0 || cols <= 0)
        fatal("makeOctagon: non-positive dimensions");

    Topology topo;
    topo.name = str("Octagon", rows * cols * 8);
    topo.description = "Rigetti Aspen-style octagon lattice";
    topo.coupling = Graph(rows * cols * 8);
    topo.embedding.resize(static_cast<std::size_t>(rows) * cols * 8);

    const double pitch = 1.6; // octagon-to-octagon spacing in units
    auto id = [cols](int r, int c, int v) { return (r * cols + c) * 8 + v; };

    for (int r = 0; r < rows; ++r) {
        for (int c = 0; c < cols; ++c) {
            for (int v = 0; v < 8; ++v) {
                topo.embedding[id(r, c, v)] =
                    Vec2(c * pitch + kOctOffsets[v][0],
                         r * pitch + kOctOffsets[v][1]);
            }
            // Ring edges.
            for (int v = 0; v < 8; ++v)
                topo.coupling.addEdge(id(r, c, v), id(r, c, (v + 1) % 8));
            // Two couplers to the octagon on the right (Aspen pattern:
            // right-side qubits to the neighbour's left-side qubits).
            if (c + 1 < cols) {
                topo.coupling.addEdge(id(r, c, 2), id(r, c + 1, 7));
                topo.coupling.addEdge(id(r, c, 3), id(r, c + 1, 6));
            }
            // Two couplers to the octagon above.
            if (r + 1 < rows) {
                topo.coupling.addEdge(id(r, c, 1), id(r + 1, c, 4));
                topo.coupling.addEdge(id(r, c, 0), id(r + 1, c, 5));
            }
        }
    }
    topo.validate();
    return topo;
}

Topology
makeAspen11()
{
    Topology topo = makeOctagon(1, 5);
    topo.name = "Aspen-11";
    topo.description = "Rigetti Aspen-11, 40 qubits / 48 couplers";
    if (topo.numQubits() != 40 || topo.numCouplers() != 48) {
        panic(str("makeAspen11: got ", topo.numQubits(), "/",
                  topo.numCouplers(), ", expected 40/48"));
    }
    return topo;
}

Topology
makeAspenM()
{
    Topology topo = makeOctagon(2, 5);
    topo.name = "Aspen-M";
    topo.description = "Rigetti Aspen-M, 80 qubits / 106 couplers";
    if (topo.numQubits() != 80 || topo.numCouplers() != 106) {
        panic(str("makeAspenM: got ", topo.numQubits(), "/",
                  topo.numCouplers(), ", expected 80/106"));
    }
    return topo;
}

} // namespace qplacer
