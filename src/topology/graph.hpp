/**
 * @file
 * Undirected graph used for device connectivity (qubit coupling maps)
 * and interference graphs (frequency assignment).
 */

#ifndef QPLACER_TOPOLOGY_GRAPH_HPP
#define QPLACER_TOPOLOGY_GRAPH_HPP

#include <utility>
#include <vector>

namespace qplacer {

/** Simple undirected graph with adjacency lists and an edge list. */
class Graph
{
  public:
    /** Create a graph with @p num_nodes nodes and no edges. */
    explicit Graph(int num_nodes = 0);

    /** Number of nodes. */
    int numNodes() const { return static_cast<int>(adjacency_.size()); }

    /** Number of (undirected) edges. */
    int numEdges() const { return static_cast<int>(edges_.size()); }

    /**
     * Add an undirected edge u-v. Self-loops and duplicates are rejected
     * via panic (device coupling maps never contain them).
     * @return the edge index.
     */
    int addEdge(int u, int v);

    /** True if u and v are adjacent. */
    bool hasEdge(int u, int v) const;

    /** Neighbours of @p u. */
    const std::vector<int> &neighbors(int u) const;

    /** Degree of @p u. */
    int degree(int u) const;

    /** All edges as (u, v) pairs with u < v. */
    const std::vector<std::pair<int, int>> &edges() const { return edges_; }

    /** Maximum degree over all nodes (0 for empty graph). */
    int maxDegree() const;

    /** BFS hop distances from @p source (-1 for unreachable nodes). */
    std::vector<int> bfsDistances(int source) const;

    /** True if the whole graph is one connected component. */
    bool isConnected() const;

    /** Hop distance between two nodes (-1 if disconnected). */
    int distance(int u, int v) const;

    /**
     * Nodes within @p radius hops of @p source (excluding the source
     * itself); used to build distance-2 interference edges.
     */
    std::vector<int> ballAround(int source, int radius) const;

    /**
     * Induced subgraph over @p nodes.
     * @return the subgraph and, via @p mapping, original node ids by
     *         subgraph index.
     */
    Graph inducedSubgraph(const std::vector<int> &nodes,
                          std::vector<int> *mapping = nullptr) const;

  private:
    void checkNode(int u) const;

    std::vector<std::vector<int>> adjacency_;
    std::vector<std::pair<int, int>> edges_;
};

} // namespace qplacer

#endif // QPLACER_TOPOLOGY_GRAPH_HPP
