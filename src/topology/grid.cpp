#include "topology/generators.hpp"

#include "util/logging.hpp"

namespace qplacer {

Topology
makeGrid(int rows, int cols)
{
    if (rows <= 0 || cols <= 0)
        fatal("makeGrid: non-positive dimensions");
    Topology topo;
    topo.name = str("Grid", rows * cols);
    topo.description = str(rows, "x", cols,
                           " nearest-neighbour grid (QEC-friendly)");
    topo.coupling = Graph(rows * cols);
    topo.embedding.resize(static_cast<std::size_t>(rows) * cols);

    auto id = [cols](int r, int c) { return r * cols + c; };
    for (int r = 0; r < rows; ++r) {
        for (int c = 0; c < cols; ++c) {
            topo.embedding[id(r, c)] = Vec2(c, r);
            if (c + 1 < cols)
                topo.coupling.addEdge(id(r, c), id(r, c + 1));
            if (r + 1 < rows)
                topo.coupling.addEdge(id(r, c), id(r + 1, c));
        }
    }
    topo.validate();
    return topo;
}

} // namespace qplacer
