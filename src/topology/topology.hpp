/**
 * @file
 * Device topology: a qubit coupling graph plus a reference 2-D embedding.
 *
 * The embedding (abstract, unit-pitch coordinates) is what a human
 * designer would draw; the Human baseline placer scales it to physical
 * pitch, and the SVG renderer uses it for schematics.
 */

#ifndef QPLACER_TOPOLOGY_TOPOLOGY_HPP
#define QPLACER_TOPOLOGY_TOPOLOGY_HPP

#include <string>
#include <vector>

#include "geometry/vec2.hpp"
#include "multidie/die_plan.hpp"
#include "topology/graph.hpp"

namespace qplacer {

/** A named device connectivity topology (Table I of the paper). */
struct Topology
{
    std::string name;        ///< e.g. "Falcon".
    std::string description; ///< Free-form provenance note.
    Graph coupling;          ///< Qubit coupling graph.
    std::vector<Vec2> embedding; ///< Reference position per qubit.

    /**
     * Device partition ("@dies=RxC[:cutGapUm=N]" spec suffix). The
     * default 1x1 spec is inactive: the flow behaves exactly as if no
     * die plan existed.
     */
    DieSpec dies;

    /** Number of qubits. */
    int numQubits() const { return coupling.numNodes(); }

    /** Number of qubit-qubit couplings (each realized by a resonator). */
    int numCouplers() const { return coupling.numEdges(); }

    /**
     * Validate internal consistency (embedding size matches the graph,
     * graph connected, distinct embedding positions). panics on failure.
     */
    void validate() const;

    /**
     * Minimum Euclidean distance between any two embedded qubits; the
     * Human placer uses this to normalize pitch.
     */
    double minEmbeddingSpacing() const;
};

} // namespace qplacer

#endif // QPLACER_TOPOLOGY_TOPOLOGY_HPP
