#include "topology/factory.hpp"

#include <cctype>

#include "topology/generators.hpp"
#include "util/logging.hpp"

namespace qplacer {

namespace {

std::string
toLowerCopy(const std::string &s)
{
    std::string out = s;
    for (char &c : out)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

/** Parse "3x9" from a spec tail; false on malformed input. */
bool
parseSpecDims(const std::string &tail, int &a, int &b)
{
    const auto x = tail.find('x');
    std::size_t consumed_a = 0;
    std::size_t consumed_b = 0;
    if (x == std::string::npos || x == 0 || x + 1 >= tail.size())
        return false;
    try {
        a = std::stoi(tail.substr(0, x), &consumed_a);
        b = std::stoi(tail.substr(x + 1), &consumed_b);
    } catch (const std::exception &) {
        return false;
    }
    return consumed_a == x && consumed_b == tail.size() - x - 1 && a > 0 &&
           b > 0;
}

bool
failWith(std::string *error, const std::string &message)
{
    if (error != nullptr)
        *error = message;
    return false;
}

/**
 * Resolve @p base (a die-suffix-free spec); error messages quote the
 * original @p spec the caller received.
 */
bool
resolveBaseSpec(const std::string &base, const std::string &spec,
                Topology &out, std::string *error)
{
    const std::string lower = toLowerCopy(base);
    for (const std::string &name : paperTopologyNames()) {
        if (lower == toLowerCopy(name)) {
            out = makeTopology(name);
            return true;
        }
    }
    if (lower == "grid25") {
        out = makeTopology("Grid25");
        return true;
    }

    int a = 0;
    int b = 0;
    const auto dims_of = [&](std::size_t prefix_len) {
        if (parseSpecDims(lower.substr(prefix_len), a, b))
            return true;
        return failWith(error, "bad topology spec '" + spec +
                                   "': expected <rows>x<cols>");
    };
    if (lower.rfind("grid", 0) == 0) {
        if (!dims_of(4))
            return false;
        out = makeGrid(a, b);
        return true;
    }
    if (lower.rfind("heavyhex", 0) == 0) {
        if (!dims_of(8))
            return false;
        out = makeHeavyHex(a, b);
        return true;
    }
    if (lower.rfind("octagon", 0) == 0) {
        if (!dims_of(7))
            return false;
        out = makeOctagon(a, b);
        return true;
    }
    return failWith(error, "unknown topology '" + spec +
                               "' (try a paper device name, gridRxC, "
                               "heavyhexRxW, or octagonRxC)");
}

} // namespace

Topology
makeTopology(const std::string &name)
{
    if (name == "Grid" || name == "Grid25")
        return makeGrid(5, 5);
    if (name == "Xtree")
        return makeXtree();
    if (name == "Falcon")
        return makeFalcon();
    if (name == "Eagle")
        return makeEagle();
    if (name == "Aspen-11")
        return makeAspen11();
    if (name == "Aspen-M")
        return makeAspenM();
    fatal("makeTopology: unknown topology '" + name + "'");
}

std::vector<std::string>
paperTopologyNames()
{
    return {"Grid", "Xtree", "Falcon", "Eagle", "Aspen-11", "Aspen-M"};
}

bool
resolveTopologySpec(const std::string &spec, Topology &out,
                    std::string *error)
{
    // "@dies=RxC[:cutGapUm=N]" composes a multi-die partition with any
    // base spec (paper name or parametric generator): strip the suffix,
    // resolve the base exactly as before, then attach the die spec.
    std::string base = spec;
    DieSpec dies;
    const std::size_t at = spec.find("@dies=");
    if (at != std::string::npos) {
        std::string die_error;
        if (!parseDieSpec(spec.substr(at + 6), dies, &die_error))
            return failWith(error, die_error);
        base = spec.substr(0, at);
        if (base.empty())
            return failWith(error, "bad topology spec '" + spec +
                                       "': missing base topology before "
                                       "'@dies='");
    }

    if (!resolveBaseSpec(base, spec, out, error))
        return false;
    out.dies = dies;
    if (dies.active()) {
        out.description += str(" [", dies.rows, "x", dies.cols, " dies, ",
                               dies.cutGapUm, " um cut gap]");
    }
    return true;
}

} // namespace qplacer
