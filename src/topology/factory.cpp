#include "topology/factory.hpp"

#include "topology/generators.hpp"
#include "util/logging.hpp"

namespace qplacer {

Topology
makeTopology(const std::string &name)
{
    if (name == "Grid" || name == "Grid25")
        return makeGrid(5, 5);
    if (name == "Xtree")
        return makeXtree();
    if (name == "Falcon")
        return makeFalcon();
    if (name == "Eagle")
        return makeEagle();
    if (name == "Aspen-11")
        return makeAspen11();
    if (name == "Aspen-M")
        return makeAspenM();
    fatal("makeTopology: unknown topology '" + name + "'");
}

std::vector<std::string>
paperTopologyNames()
{
    return {"Grid", "Xtree", "Falcon", "Eagle", "Aspen-11", "Aspen-M"};
}

} // namespace qplacer
