#include "topology/graph.hpp"

#include <algorithm>
#include <queue>

#include "util/logging.hpp"

namespace qplacer {

Graph::Graph(int num_nodes)
    : adjacency_(num_nodes)
{
    if (num_nodes < 0)
        panic("Graph: negative node count");
}

void
Graph::checkNode(int u) const
{
    if (u < 0 || u >= numNodes())
        panic(str("Graph: node ", u, " out of range [0, ", numNodes(), ")"));
}

int
Graph::addEdge(int u, int v)
{
    checkNode(u);
    checkNode(v);
    if (u == v)
        panic(str("Graph::addEdge: self-loop at ", u));
    if (hasEdge(u, v))
        panic(str("Graph::addEdge: duplicate edge ", u, "-", v));
    adjacency_[u].push_back(v);
    adjacency_[v].push_back(u);
    edges_.emplace_back(std::min(u, v), std::max(u, v));
    return numEdges() - 1;
}

bool
Graph::hasEdge(int u, int v) const
{
    checkNode(u);
    checkNode(v);
    const auto &adj = adjacency_[u];
    return std::find(adj.begin(), adj.end(), v) != adj.end();
}

const std::vector<int> &
Graph::neighbors(int u) const
{
    checkNode(u);
    return adjacency_[u];
}

int
Graph::degree(int u) const
{
    checkNode(u);
    return static_cast<int>(adjacency_[u].size());
}

int
Graph::maxDegree() const
{
    int best = 0;
    for (int u = 0; u < numNodes(); ++u)
        best = std::max(best, degree(u));
    return best;
}

std::vector<int>
Graph::bfsDistances(int source) const
{
    checkNode(source);
    std::vector<int> dist(numNodes(), -1);
    std::queue<int> frontier;
    dist[source] = 0;
    frontier.push(source);
    while (!frontier.empty()) {
        const int u = frontier.front();
        frontier.pop();
        for (int v : adjacency_[u]) {
            if (dist[v] < 0) {
                dist[v] = dist[u] + 1;
                frontier.push(v);
            }
        }
    }
    return dist;
}

bool
Graph::isConnected() const
{
    if (numNodes() == 0)
        return true;
    const auto dist = bfsDistances(0);
    return std::all_of(dist.begin(), dist.end(),
                       [](int d) { return d >= 0; });
}

int
Graph::distance(int u, int v) const
{
    checkNode(v);
    return bfsDistances(u)[v];
}

std::vector<int>
Graph::ballAround(int source, int radius) const
{
    const auto dist = bfsDistances(source);
    std::vector<int> out;
    for (int v = 0; v < numNodes(); ++v) {
        if (v != source && dist[v] >= 0 && dist[v] <= radius)
            out.push_back(v);
    }
    return out;
}

Graph
Graph::inducedSubgraph(const std::vector<int> &nodes,
                       std::vector<int> *mapping) const
{
    std::vector<int> index(numNodes(), -1);
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        checkNode(nodes[i]);
        if (index[nodes[i]] >= 0)
            panic("Graph::inducedSubgraph: duplicate node in selection");
        index[nodes[i]] = static_cast<int>(i);
    }
    Graph sub(static_cast<int>(nodes.size()));
    for (const auto &[u, v] : edges_) {
        if (index[u] >= 0 && index[v] >= 0)
            sub.addEdge(index[u], index[v]);
    }
    if (mapping)
        *mapping = nodes;
    return sub;
}

} // namespace qplacer
