#include "topology/generators.hpp"

#include "util/logging.hpp"

namespace qplacer {

Topology
makeFalcon()
{
    // The published IBM Falcon 27-qubit coupling map (e.g. ibmq_montreal)
    // with the standard gate-map drawing coordinates (col, row).
    Topology topo;
    topo.name = "Falcon";
    topo.description = "IBM Falcon heavy-hex, 27 qubits / 28 couplers";
    topo.coupling = Graph(27);

    static const int kEdges[][2] = {
        {0, 1},   {1, 2},   {1, 4},   {2, 3},   {3, 5},   {4, 7},
        {5, 8},   {6, 7},   {7, 10},  {8, 9},   {8, 11},  {10, 12},
        {11, 14}, {12, 13}, {12, 15}, {13, 14}, {14, 16}, {15, 18},
        {16, 19}, {17, 18}, {18, 21}, {19, 20}, {19, 22}, {21, 23},
        {22, 25}, {23, 24}, {24, 25}, {25, 26},
    };
    for (const auto &e : kEdges)
        topo.coupling.addEdge(e[0], e[1]);

    static const double kCoords[][2] = {
        {1, 0}, {1, 1}, {2, 1}, {3, 1}, {1, 2},  {3, 2},  {0, 3},
        {1, 3}, {3, 3}, {4, 3}, {1, 4}, {3, 4},  {1, 5},  {2, 5},
        {3, 5}, {1, 6}, {3, 6}, {0, 7}, {1, 7},  {3, 7},  {4, 7},
        {1, 8}, {3, 8}, {1, 9}, {2, 9}, {3, 9},  {3, 10},
    };
    topo.embedding.reserve(27);
    for (const auto &c : kCoords)
        topo.embedding.emplace_back(c[1], c[0]); // (row, col) -> (x, y)

    topo.validate();
    return topo;
}

Topology
makeHeavyHex(int num_rows, int row_width)
{
    if (num_rows < 2 || row_width < 5)
        fatal("makeHeavyHex: need at least 2 rows of width >= 5");

    // Qubit rows at even y; bridge qubits between consecutive rows at odd
    // y. Bridges sit every 4 columns; the offset alternates 0 / 2 per gap
    // (the Eagle pattern). The first row drops its last column and the
    // last row drops its first column, as on the published Eagle map.
    Topology topo;
    topo.name = str("HeavyHex", num_rows, "x", row_width);
    topo.description = "parametric heavy-hex lattice (Eagle pattern)";

    std::vector<std::vector<int>> row_ids(num_rows);
    std::vector<Vec2> coords;
    int next = 0;

    auto row_has = [&](int r, int c) {
        if (c < 0 || c >= row_width)
            return false;
        if (r == 0 && c == row_width - 1)
            return false; // first row is one shorter (right end)
        if (r == num_rows - 1 && c == 0)
            return false; // last row is one shorter (left end)
        return true;
    };

    for (int r = 0; r < num_rows; ++r) {
        row_ids[r].assign(row_width, -1);
        for (int c = 0; c < row_width; ++c) {
            if (!row_has(r, c))
                continue;
            row_ids[r][c] = next++;
            coords.emplace_back(c, 2 * r);
        }
    }

    struct Bridge
    {
        int id;
        int row;
        int col;
    };
    std::vector<Bridge> bridges;
    for (int r = 0; r + 1 < num_rows; ++r) {
        const int offset = (r % 2 == 0) ? 0 : 2;
        for (int c = offset; c < row_width; c += 4) {
            if (row_ids[r][c] < 0 || row_ids[r + 1][c] < 0)
                continue;
            bridges.push_back(Bridge{next++, r, c});
            coords.emplace_back(c, 2 * r + 1);
        }
    }

    topo.coupling = Graph(next);
    topo.embedding = coords;

    for (int r = 0; r < num_rows; ++r) {
        for (int c = 0; c + 1 < row_width; ++c) {
            if (row_ids[r][c] >= 0 && row_ids[r][c + 1] >= 0)
                topo.coupling.addEdge(row_ids[r][c], row_ids[r][c + 1]);
        }
    }
    for (const Bridge &b : bridges) {
        topo.coupling.addEdge(b.id, row_ids[b.row][b.col]);
        topo.coupling.addEdge(b.id, row_ids[b.row + 1][b.col]);
    }

    topo.validate();
    return topo;
}

Topology
makeEagle()
{
    Topology topo = makeHeavyHex(7, 15);
    topo.name = "Eagle";
    topo.description = "IBM Eagle heavy-hex, 127 qubits / 144 couplers";
    if (topo.numQubits() != 127 || topo.numCouplers() != 144) {
        panic(str("makeEagle: got ", topo.numQubits(), " qubits / ",
                  topo.numCouplers(), " couplers, expected 127/144"));
    }
    return topo;
}

} // namespace qplacer
