/**
 * @file
 * Generators for the six device topologies evaluated in the paper
 * (Table I): Grid-25, Heavy-Hex 27 (Falcon), Heavy-Hex 127 (Eagle),
 * Octagon 40 (Aspen-11), Octagon 80 (Aspen-M), X-tree 53.
 */

#ifndef QPLACER_TOPOLOGY_GENERATORS_HPP
#define QPLACER_TOPOLOGY_GENERATORS_HPP

#include "topology/topology.hpp"

namespace qplacer {

/**
 * Rectangular nearest-neighbour grid (rows x cols qubits); the paper's
 * QEC-friendly "Grid 25" is makeGrid(5, 5).
 */
Topology makeGrid(int rows, int cols);

/**
 * IBM Falcon 27-qubit heavy-hex processor (the published coupling map of
 * the 27-qubit Falcon family, 28 couplers).
 */
Topology makeFalcon();

/**
 * IBM Eagle 127-qubit heavy-hex processor, generated parametrically as
 * 7 qubit rows (14/15/.../15/14 wide) joined by 4 bridge qubits per gap;
 * reproduces the published 127 qubits / 144 couplers.
 */
Topology makeEagle();

/**
 * Generic heavy-hex lattice made of @p num_rows horizontal chains of
 * width @p row_width joined by bridge qubits every 4 columns with
 * alternating offsets (the Eagle construction, parameterized).
 */
Topology makeHeavyHex(int num_rows, int row_width);

/**
 * Rigetti Aspen-style octagon lattice: @p rows x @p cols rings of eight
 * qubits; adjacent rings share two couplers. Aspen-11 is (1, 5),
 * Aspen-M is (2, 5).
 */
Topology makeOctagon(int rows, int cols);

/** Rigetti Aspen-11 (40 qubits, 48 couplers). */
Topology makeAspen11();

/** Rigetti Aspen-M (80 qubits, 106 couplers). */
Topology makeAspenM();

/**
 * X-tree (Pauli-string-efficient architecture, level 3): a 53-qubit tree
 * (52 couplers) with branching 4 at the first two levels and 2 at the
 * leaves, embedded radially.
 */
Topology makeXtree();

} // namespace qplacer

#endif // QPLACER_TOPOLOGY_GENERATORS_HPP
