/**
 * @file
 * Name-based topology lookup plus the paper's full evaluation suite.
 */

#ifndef QPLACER_TOPOLOGY_FACTORY_HPP
#define QPLACER_TOPOLOGY_FACTORY_HPP

#include <string>
#include <vector>

#include "topology/topology.hpp"

namespace qplacer {

/**
 * Build a topology by name: "Grid", "Xtree", "Falcon", "Eagle",
 * "Aspen-11", "Aspen-M". fatal() on unknown names.
 */
Topology makeTopology(const std::string &name);

/** Names of the six topologies evaluated in the paper, in paper order. */
std::vector<std::string> paperTopologyNames();

} // namespace qplacer

#endif // QPLACER_TOPOLOGY_FACTORY_HPP
