/**
 * @file
 * Name-based topology lookup plus the paper's full evaluation suite.
 */

#ifndef QPLACER_TOPOLOGY_FACTORY_HPP
#define QPLACER_TOPOLOGY_FACTORY_HPP

#include <string>
#include <vector>

#include "topology/topology.hpp"

namespace qplacer {

/**
 * Build a topology by name: "Grid", "Xtree", "Falcon", "Eagle",
 * "Aspen-11", "Aspen-M". fatal() on unknown names.
 */
Topology makeTopology(const std::string &name);

/** Names of the six topologies evaluated in the paper, in paper order. */
std::vector<std::string> paperTopologyNames();

/**
 * Resolve a user-facing topology spec: a paper device name
 * (case-insensitive) or a parametric gridRxC / heavyhexRxW /
 * octagonRxC spec (e.g. "grid8x8"). Any base spec composes with a
 * multi-die suffix "@dies=RxC[:cutGapUm=N]" (e.g.
 * "grid32x32@dies=2x1:cutGapUm=800"); "dies=1x1" is the single-die
 * flow, bit for bit. Shared by the CLI and the server. Returns false
 * with a message in @p error (if non-null) on unknown or malformed
 * specs instead of fatal()ing.
 */
bool resolveTopologySpec(const std::string &spec, Topology &out,
                         std::string *error = nullptr);

} // namespace qplacer

#endif // QPLACER_TOPOLOGY_FACTORY_HPP
