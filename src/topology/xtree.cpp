#include "topology/generators.hpp"

#include <cmath>
#include <numbers>

#include "util/logging.hpp"

namespace qplacer {

Topology
makeXtree()
{
    // 53-qubit tree approximating the level-3 X-tree of the
    // Pauli-string-efficient architecture: branching 4 at depth 0 and 1,
    // branching 2 at depth 2; 1 + 4 + 16 + 32 = 53 qubits, 52 couplers.
    Topology topo;
    topo.name = "Xtree";
    topo.description = "X-tree level 3, 53 qubits / 52 couplers";
    topo.coupling = Graph(53);
    topo.embedding.resize(53);

    constexpr double kTau = 2.0 * std::numbers::pi;

    int next = 0;
    const int root = next++;
    topo.embedding[root] = Vec2(0.0, 0.0);

    // Radial layout: depth-1 ring radius 2, depth-2 radius 4.2,
    // depth-3 radius 6.4; children fan out around the parent angle.
    std::vector<int> level1, level2;
    for (int i = 0; i < 4; ++i) {
        const int q = next++;
        level1.push_back(q);
        const double ang = kTau * i / 4.0;
        topo.embedding[q] = Vec2(2.0 * std::cos(ang), 2.0 * std::sin(ang));
        topo.coupling.addEdge(root, q);
    }
    for (int i = 0; i < 4; ++i) {
        for (int j = 0; j < 4; ++j) {
            const int q = next++;
            level2.push_back(q);
            const double ang =
                kTau * i / 4.0 + (j - 1.5) * (kTau / 18.0);
            topo.embedding[q] =
                Vec2(4.2 * std::cos(ang), 4.2 * std::sin(ang));
            topo.coupling.addEdge(level1[i], q);
        }
    }
    for (int k = 0; k < 16; ++k) {
        const int i = k / 4;
        const int j = k % 4;
        for (int l = 0; l < 2; ++l) {
            const int q = next++;
            const double ang = kTau * i / 4.0 +
                               (j - 1.5) * (kTau / 18.0) +
                               (l - 0.5) * (kTau / 40.0);
            topo.embedding[q] =
                Vec2(6.4 * std::cos(ang), 6.4 * std::sin(ang));
            topo.coupling.addEdge(level2[k], q);
        }
    }

    if (next != 53)
        panic(str("makeXtree: built ", next, " qubits, expected 53"));
    topo.validate();
    return topo;
}

} // namespace qplacer
