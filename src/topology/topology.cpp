#include "topology/topology.hpp"

#include <limits>

#include "util/logging.hpp"

namespace qplacer {

void
Topology::validate() const
{
    if (static_cast<int>(embedding.size()) != coupling.numNodes()) {
        panic(str("Topology '", name, "': embedding size ",
                  embedding.size(), " != node count ",
                  coupling.numNodes()));
    }
    if (!coupling.isConnected())
        panic(str("Topology '", name, "': coupling graph disconnected"));
    for (std::size_t i = 0; i < embedding.size(); ++i) {
        for (std::size_t j = i + 1; j < embedding.size(); ++j) {
            if (embedding[i].dist(embedding[j]) < 1e-9) {
                panic(str("Topology '", name, "': qubits ", i, " and ", j,
                          " share an embedding position"));
            }
        }
    }
}

double
Topology::minEmbeddingSpacing() const
{
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < embedding.size(); ++i) {
        for (std::size_t j = i + 1; j < embedding.size(); ++j)
            best = std::min(best, embedding[i].dist(embedding[j]));
    }
    return best;
}

} // namespace qplacer
