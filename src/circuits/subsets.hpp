/**
 * @file
 * Connected device-subset sampling: the evaluation maps each benchmark
 * onto 50 different connected subsets of the device's qubits
 * (Section VI-A) so that performance is averaged over the whole chip.
 */

#ifndef QPLACER_CIRCUITS_SUBSETS_HPP
#define QPLACER_CIRCUITS_SUBSETS_HPP

#include <cstdint>
#include <vector>

#include "topology/graph.hpp"

namespace qplacer {

/**
 * Sample one connected subset of @p size nodes by randomized BFS growth
 * from a random seed node.
 */
std::vector<int> sampleConnectedSubset(const Graph &graph, int size,
                                       std::uint64_t seed);

/**
 * Sample @p count connected subsets deterministically from @p seed.
 * Subsets may repeat on small devices (as in the paper, which aims to
 * cover all physical qubits).
 */
std::vector<std::vector<int>> sampleSubsets(const Graph &graph, int size,
                                            int count, std::uint64_t seed);

} // namespace qplacer

#endif // QPLACER_CIRCUITS_SUBSETS_HPP
