/**
 * @file
 * Shortest-path routing helper used by the SWAP router.
 */

#ifndef QPLACER_CIRCUITS_ROUTER_HPP
#define QPLACER_CIRCUITS_ROUTER_HPP

#include <vector>

#include "topology/graph.hpp"

namespace qplacer {

/**
 * BFS shortest path from @p from to @p to (inclusive of both ends).
 * panics if unreachable (subsets are connected by construction).
 */
std::vector<int> shortestPath(const Graph &graph, int from, int to);

} // namespace qplacer

#endif // QPLACER_CIRCUITS_ROUTER_HPP
