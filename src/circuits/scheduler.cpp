#include "circuits/scheduler.hpp"

#include <algorithm>
#include <map>

#include "util/logging.hpp"

namespace qplacer {

Schedule
scheduleAsap(const MappedCircuit &mapped, const Graph &device, double t1q,
             double t2q)
{
    const int n = device.numNodes();
    Schedule sched;
    sched.busyS.assign(n, 0.0);
    sched.edgeBusyS.assign(device.numEdges(), 0.0);

    // Edge lookup (u, v) -> edge id.
    std::map<std::pair<int, int>, int> edge_id;
    const auto &edges = device.edges();
    for (int e = 0; e < device.numEdges(); ++e)
        edge_id[edges[e]] = e;

    std::vector<double> avail(n, 0.0);
    for (const Gate &g : mapped.gates) {
        if (!g.isTwoQubit()) {
            avail[g.q0] += t1q;
            sched.busyS[g.q0] += t1q;
            continue;
        }
        const double dur = (g.kind == GateKind::Swap) ? 3.0 * t2q : t2q;
        const double start = std::max(avail[g.q0], avail[g.q1]);
        avail[g.q0] = start + dur;
        avail[g.q1] = start + dur;
        sched.busyS[g.q0] += dur;
        sched.busyS[g.q1] += dur;

        const auto key = std::make_pair(std::min(g.q0, g.q1),
                                        std::max(g.q0, g.q1));
        const auto it = edge_id.find(key);
        if (it == edge_id.end())
            panic(str("scheduleAsap: gate on uncoupled pair ", g.q0, "-",
                      g.q1));
        sched.edgeBusyS[it->second] += dur;
    }
    sched.durationS = *std::max_element(avail.begin(), avail.end());
    return sched;
}

} // namespace qplacer
