/**
 * @file
 * ASAP scheduling of a mapped circuit: computes the program's makespan
 * and per-qubit busy times, the durations the decoherence and crosstalk
 * error models integrate over.
 */

#ifndef QPLACER_CIRCUITS_SCHEDULER_HPP
#define QPLACER_CIRCUITS_SCHEDULER_HPP

#include <vector>

#include "circuits/mapper.hpp"
#include "physics/constants.hpp"

namespace qplacer {

/** Timing summary of a mapped circuit. */
struct Schedule
{
    /** Total program duration (s). */
    double durationS = 0.0;

    /** Time each device qubit spends executing gates (s), by qubit id. */
    std::vector<double> busyS;

    /**
     * Two-qubit-gate occupation time per device coupler/edge (s),
     * indexed by edge id; filled only when the device graph is given.
     */
    std::vector<double> edgeBusyS;
};

/**
 * ASAP schedule of @p mapped.
 * @param device     Device graph (for per-edge resonator usage).
 * @param t1q, t2q   Gate durations (s); a SWAP takes 3 * t2q.
 */
Schedule scheduleAsap(const MappedCircuit &mapped, const Graph &device,
                      double t1q = kGate1qSeconds,
                      double t2q = kGate2qSeconds);

} // namespace qplacer

#endif // QPLACER_CIRCUITS_SCHEDULER_HPP
