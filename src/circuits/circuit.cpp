#include "circuits/circuit.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace qplacer {

bool
Gate::isTwoQubit() const
{
    return kind == GateKind::CZ || kind == GateKind::CX ||
           kind == GateKind::Swap;
}

std::string
Gate::name() const
{
    switch (kind) {
      case GateKind::H:
        return "h";
      case GateKind::X:
        return "x";
      case GateKind::RX:
        return "rx";
      case GateKind::RY:
        return "ry";
      case GateKind::RZ:
        return "rz";
      case GateKind::CZ:
        return "cz";
      case GateKind::CX:
        return "cx";
      case GateKind::Swap:
        return "swap";
    }
    return "?";
}

Circuit::Circuit(int num_qubits, std::string name)
    : numQubits_(num_qubits), name_(std::move(name))
{
    if (num_qubits <= 0)
        fatal("Circuit: non-positive qubit count");
}

void
Circuit::add1q(GateKind kind, int q, double param)
{
    if (q < 0 || q >= numQubits_)
        panic(str("Circuit::add1q: qubit ", q, " out of range"));
    Gate g;
    g.kind = kind;
    g.q0 = q;
    g.param = param;
    if (g.isTwoQubit())
        panic("Circuit::add1q: two-qubit kind");
    gates_.push_back(g);
}

void
Circuit::add2q(GateKind kind, int q0, int q1, double param)
{
    if (q0 < 0 || q0 >= numQubits_ || q1 < 0 || q1 >= numQubits_)
        panic(str("Circuit::add2q: qubit out of range (", q0, ", ", q1,
                  ")"));
    if (q0 == q1)
        panic("Circuit::add2q: identical operands");
    Gate g;
    g.kind = kind;
    g.q0 = q0;
    g.q1 = q1;
    g.param = param;
    if (!g.isTwoQubit())
        panic("Circuit::add2q: single-qubit kind");
    gates_.push_back(g);
}

int
Circuit::count1q() const
{
    int n = 0;
    for (const Gate &g : gates_)
        n += g.isTwoQubit() ? 0 : 1;
    return n;
}

int
Circuit::count2q() const
{
    int n = 0;
    for (const Gate &g : gates_)
        n += g.isTwoQubit() ? 1 : 0;
    return n;
}

int
Circuit::depth() const
{
    std::vector<int> level(numQubits_, 0);
    for (const Gate &g : gates_) {
        if (g.isTwoQubit()) {
            const int l = std::max(level[g.q0], level[g.q1]) + 1;
            level[g.q0] = l;
            level[g.q1] = l;
        } else {
            ++level[g.q0];
        }
    }
    return *std::max_element(level.begin(), level.end());
}

} // namespace qplacer
