#include "circuits/router.hpp"

#include <algorithm>
#include <queue>

#include "util/logging.hpp"

namespace qplacer {

std::vector<int>
shortestPath(const Graph &graph, int from, int to)
{
    std::vector<int> parent(graph.numNodes(), -1);
    std::queue<int> frontier;
    parent[from] = from;
    frontier.push(from);
    while (!frontier.empty()) {
        const int u = frontier.front();
        frontier.pop();
        if (u == to)
            break;
        for (int v : graph.neighbors(u)) {
            if (parent[v] < 0) {
                parent[v] = u;
                frontier.push(v);
            }
        }
    }
    if (parent[to] < 0)
        panic(str("shortestPath: ", to, " unreachable from ", from));

    std::vector<int> path;
    for (int v = to; v != from; v = parent[v])
        path.push_back(v);
    path.push_back(from);
    std::reverse(path.begin(), path.end());
    return path;
}

} // namespace qplacer
