#include "circuits/mapper.hpp"

#include <algorithm>

#include "circuits/router.hpp"
#include "util/logging.hpp"

namespace qplacer {

Mapper::Mapper(const Graph &device)
    : device_(device)
{
}

MappedCircuit
Mapper::map(const Circuit &circuit, const std::vector<int> &subset) const
{
    const int n = circuit.numQubits();
    if (static_cast<int>(subset.size()) < n) {
        fatal(str("Mapper: subset of ", subset.size(),
                  " qubits cannot host ", n, "-qubit circuit"));
    }

    std::vector<int> mapping; // sub-index by subgraph node order
    const Graph sub = device_.inducedSubgraph(subset, &mapping);
    if (!sub.isConnected())
        fatal("Mapper: subset is not connected");

    // Initial mapping: BFS order from the highest-degree subset node.
    int root = 0;
    for (int v = 1; v < sub.numNodes(); ++v) {
        if (sub.degree(v) > sub.degree(root))
            root = v;
    }
    std::vector<int> order;
    {
        const std::vector<int> dist = sub.bfsDistances(root);
        order.resize(sub.numNodes());
        for (int v = 0; v < sub.numNodes(); ++v)
            order[v] = v;
        std::sort(order.begin(), order.end(), [&](int a, int b) {
            if (dist[a] != dist[b])
                return dist[a] < dist[b];
            return a < b;
        });
    }

    // phys[l] = subgraph node currently holding logical qubit l.
    std::vector<int> phys(n);
    for (int l = 0; l < n; ++l)
        phys[l] = order[l];
    // holder[node] = logical qubit on that node, or -1.
    std::vector<int> holder(sub.numNodes(), -1);
    for (int l = 0; l < n; ++l)
        holder[phys[l]] = l;

    MappedCircuit out;
    const int device_n = device_.numNodes();
    out.gates1q.assign(device_n, 0);
    out.gates2q.assign(device_n, 0);
    std::vector<char> active(device_n, 0);

    auto touch = [&](int device_q) { active[device_q] = 1; };
    auto emit1q = [&](GateKind kind, int node, double param) {
        const int dq = subset[node];
        out.gates.push_back(Gate{kind, dq, -1, param});
        ++out.gates1q[dq];
        touch(dq);
    };
    auto emit2q = [&](GateKind kind, int na, int nb, double param) {
        const int da = subset[na];
        const int db = subset[nb];
        out.gates.push_back(Gate{kind, da, db, param});
        // A SWAP decomposes into three native two-qubit gates.
        const int cost = kind == GateKind::Swap ? 3 : 1;
        out.gates2q[da] += cost;
        out.gates2q[db] += cost;
        touch(da);
        touch(db);
    };

    for (const Gate &g : circuit.gates()) {
        if (!g.isTwoQubit()) {
            emit1q(g.kind, phys[g.q0], g.param);
            continue;
        }
        // Route until the operands are adjacent.
        while (!sub.hasEdge(phys[g.q0], phys[g.q1])) {
            const std::vector<int> path =
                shortestPath(sub, phys[g.q0], phys[g.q1]);
            const int here = path[0];
            const int next = path[1];
            emit2q(GateKind::Swap, here, next, 0.0);
            ++out.numSwaps;
            // Update the mapping: whatever sits on `next` moves back.
            const int other = holder[next];
            holder[here] = other;
            holder[next] = g.q0;
            if (other >= 0)
                phys[other] = here;
            phys[g.q0] = next;
        }
        emit2q(g.kind, phys[g.q0], phys[g.q1], g.param);
    }

    for (int dq = 0; dq < device_n; ++dq) {
        if (active[dq])
            out.activeQubits.push_back(dq);
    }
    return out;
}

} // namespace qplacer
