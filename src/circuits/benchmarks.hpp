/**
 * @file
 * NISQ benchmark circuit generators (Table I): Bernstein-Vazirani,
 * QAOA, linear Ising simulation, and QGAN ansatz circuits.
 */

#ifndef QPLACER_CIRCUITS_BENCHMARKS_HPP
#define QPLACER_CIRCUITS_BENCHMARKS_HPP

#include <string>
#include <vector>

#include "circuits/circuit.hpp"

namespace qplacer {

/**
 * Bernstein-Vazirani over @p num_qubits total qubits (n-1 data + 1
 * ancilla) with the all-ones secret (worst case).
 */
Circuit makeBv(int num_qubits);

/**
 * Depth-1 QAOA for MaxCut on the n-cycle: per-edge ZZ phase
 * (CX-RZ-CX) plus an RX mixer layer.
 */
Circuit makeQaoa(int num_qubits);

/**
 * Trotterized linear Ising chain ([7]): @p steps first-order Trotter
 * steps of nearest-neighbour ZZ plus transverse-field RX.
 */
Circuit makeIsing(int num_qubits, int steps = 3);

/**
 * QGAN generator ansatz ([55]): @p layers hardware-efficient layers of
 * RY+RZ rotations and a CX entangling chain.
 */
Circuit makeQgan(int num_qubits, int layers = 2);

/**
 * Benchmark by paper name: "bv-4", "bv-9", "bv-16", "qaoa-4", "qaoa-9",
 * "ising-4", "qgan-4", "qgan-9". fatal() on unknown names.
 */
Circuit makeBenchmark(const std::string &name);

/** The eight benchmark names, in the paper's order. */
std::vector<std::string> paperBenchmarkNames();

} // namespace qplacer

#endif // QPLACER_CIRCUITS_BENCHMARKS_HPP
