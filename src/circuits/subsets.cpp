#include "circuits/subsets.hpp"

#include <algorithm>

#include "util/logging.hpp"
#include "util/rng.hpp"

namespace qplacer {

std::vector<int>
sampleConnectedSubset(const Graph &graph, int size, std::uint64_t seed)
{
    const int n = graph.numNodes();
    if (size <= 0 || size > n)
        fatal(str("sampleConnectedSubset: size ", size,
                  " out of range for ", n, " nodes"));
    Rng rng(seed);

    std::vector<int> subset;
    std::vector<char> in_subset(n, 0);
    std::vector<int> frontier;

    const int start = static_cast<int>(rng.below(n));
    subset.push_back(start);
    in_subset[start] = 1;
    for (int v : graph.neighbors(start))
        frontier.push_back(v);

    while (static_cast<int>(subset.size()) < size) {
        // Drop frontier nodes already absorbed.
        frontier.erase(std::remove_if(frontier.begin(), frontier.end(),
                                      [&](int v) { return in_subset[v]; }),
                       frontier.end());
        if (frontier.empty())
            panic("sampleConnectedSubset: graph exhausted (disconnected?)");
        const std::size_t pick = rng.below(frontier.size());
        const int v = frontier[pick];
        frontier.erase(frontier.begin() + static_cast<long>(pick));
        subset.push_back(v);
        in_subset[v] = 1;
        for (int u : graph.neighbors(v)) {
            if (!in_subset[u])
                frontier.push_back(u);
        }
    }
    std::sort(subset.begin(), subset.end());
    return subset;
}

std::vector<std::vector<int>>
sampleSubsets(const Graph &graph, int size, int count, std::uint64_t seed)
{
    std::vector<std::vector<int>> out;
    out.reserve(count);
    for (int i = 0; i < count; ++i) {
        out.push_back(sampleConnectedSubset(
            graph, size, seed * 1000003ULL + static_cast<std::uint64_t>(i)));
    }
    return out;
}

} // namespace qplacer
