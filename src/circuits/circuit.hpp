/**
 * @file
 * Minimal quantum circuit IR for the NISQ benchmarks (Table I). Gates
 * are what the fidelity model needs: single-qubit pulses and two-qubit
 * (RIP/CZ-class) interactions.
 */

#ifndef QPLACER_CIRCUITS_CIRCUIT_HPP
#define QPLACER_CIRCUITS_CIRCUIT_HPP

#include <string>
#include <vector>

namespace qplacer {

/** Gate kinds relevant to the error model. */
enum class GateKind
{
    H,    ///< Hadamard (1q).
    X,    ///< Pauli X (1q).
    RX,   ///< X rotation (1q).
    RY,   ///< Y rotation (1q).
    RZ,   ///< Z rotation (1q).
    CZ,   ///< Controlled-Z (2q, RIP gate).
    CX,   ///< Controlled-X (2q; compiled to CZ + 1q on hardware).
    Swap, ///< Inserted by routing; costs three 2q gates.
};

/** One gate application. */
struct Gate
{
    GateKind kind = GateKind::H;
    int q0 = -1;
    int q1 = -1; ///< Second operand for 2q gates, else -1.
    double param = 0.0;

    /** True for CZ/CX/Swap. */
    bool isTwoQubit() const;

    /** Short mnemonic for dumps. */
    std::string name() const;
};

/** Ordered gate list over n logical qubits. */
class Circuit
{
  public:
    explicit Circuit(int num_qubits, std::string name = "circuit");

    int numQubits() const { return numQubits_; }
    const std::string &name() const { return name_; }
    const std::vector<Gate> &gates() const { return gates_; }

    /** Append a single-qubit gate. */
    void add1q(GateKind kind, int q, double param = 0.0);

    /** Append a two-qubit gate. */
    void add2q(GateKind kind, int q0, int q1, double param = 0.0);

    /** Number of single-qubit gates. */
    int count1q() const;

    /** Number of two-qubit gates (Swap counts as one entry here). */
    int count2q() const;

    /** Circuit depth: longest per-qubit chain of gates. */
    int depth() const;

  private:
    int numQubits_;
    std::string name_;
    std::vector<Gate> gates_;
};

} // namespace qplacer

#endif // QPLACER_CIRCUITS_CIRCUIT_HPP
