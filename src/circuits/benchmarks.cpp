#include "circuits/benchmarks.hpp"

#include "util/logging.hpp"

namespace qplacer {

Circuit
makeBv(int num_qubits)
{
    if (num_qubits < 2)
        fatal("makeBv: need at least 2 qubits");
    Circuit c(num_qubits, str("bv-", num_qubits));
    const int anc = num_qubits - 1;
    // Prepare |-> on the ancilla, |+> on the data register.
    c.add1q(GateKind::X, anc);
    for (int q = 0; q < num_qubits; ++q)
        c.add1q(GateKind::H, q);
    // Oracle for the all-ones secret string.
    for (int q = 0; q < anc; ++q)
        c.add2q(GateKind::CX, q, anc);
    for (int q = 0; q < anc; ++q)
        c.add1q(GateKind::H, q);
    return c;
}

Circuit
makeQaoa(int num_qubits)
{
    if (num_qubits < 3)
        fatal("makeQaoa: need at least 3 qubits");
    Circuit c(num_qubits, str("qaoa-", num_qubits));
    for (int q = 0; q < num_qubits; ++q)
        c.add1q(GateKind::H, q);
    // Cost layer: ZZ phase on every ring edge.
    for (int q = 0; q < num_qubits; ++q) {
        const int next = (q + 1) % num_qubits;
        c.add2q(GateKind::CX, q, next);
        c.add1q(GateKind::RZ, next, 0.7);
        c.add2q(GateKind::CX, q, next);
    }
    // Mixer layer.
    for (int q = 0; q < num_qubits; ++q)
        c.add1q(GateKind::RX, q, 0.4);
    return c;
}

Circuit
makeIsing(int num_qubits, int steps)
{
    if (num_qubits < 2 || steps < 1)
        fatal("makeIsing: invalid size");
    Circuit c(num_qubits, str("ising-", num_qubits));
    for (int q = 0; q < num_qubits; ++q)
        c.add1q(GateKind::H, q);
    for (int s = 0; s < steps; ++s) {
        for (int q = 0; q + 1 < num_qubits; ++q) {
            c.add2q(GateKind::CX, q, q + 1);
            c.add1q(GateKind::RZ, q + 1, 0.3);
            c.add2q(GateKind::CX, q, q + 1);
        }
        for (int q = 0; q < num_qubits; ++q)
            c.add1q(GateKind::RX, q, 0.2);
    }
    return c;
}

Circuit
makeQgan(int num_qubits, int layers)
{
    if (num_qubits < 2 || layers < 1)
        fatal("makeQgan: invalid size");
    Circuit c(num_qubits, str("qgan-", num_qubits));
    for (int l = 0; l < layers; ++l) {
        for (int q = 0; q < num_qubits; ++q) {
            c.add1q(GateKind::RY, q, 0.5 + 0.1 * l);
            c.add1q(GateKind::RZ, q, 0.3 + 0.1 * l);
        }
        for (int q = 0; q + 1 < num_qubits; ++q)
            c.add2q(GateKind::CX, q, q + 1);
    }
    for (int q = 0; q < num_qubits; ++q)
        c.add1q(GateKind::RY, q, 0.9);
    return c;
}

Circuit
makeBenchmark(const std::string &name)
{
    if (name == "bv-4")
        return makeBv(4);
    if (name == "bv-9")
        return makeBv(9);
    if (name == "bv-16")
        return makeBv(16);
    if (name == "qaoa-4")
        return makeQaoa(4);
    if (name == "qaoa-9")
        return makeQaoa(9);
    if (name == "ising-4")
        return makeIsing(4);
    if (name == "qgan-4")
        return makeQgan(4);
    if (name == "qgan-9")
        return makeQgan(9);
    fatal("makeBenchmark: unknown benchmark '" + name + "'");
}

std::vector<std::string>
paperBenchmarkNames()
{
    return {"bv-4",   "bv-9",    "bv-16",  "qaoa-4",
            "qaoa-9", "ising-4", "qgan-4", "qgan-9"};
}

} // namespace qplacer
