/**
 * @file
 * Logical-to-physical mapping of benchmark circuits onto a device
 * subset (the Qiskit-transpiler substitute; see DESIGN.md section 1).
 */

#ifndef QPLACER_CIRCUITS_MAPPER_HPP
#define QPLACER_CIRCUITS_MAPPER_HPP

#include <vector>

#include "circuits/circuit.hpp"
#include "topology/graph.hpp"

namespace qplacer {

/** A circuit routed onto physical qubits of the full device. */
struct MappedCircuit
{
    /** Gates with q0/q1 rewritten to *device* qubit ids. */
    std::vector<Gate> gates;

    /** Device qubits touched by the program. */
    std::vector<int> activeQubits;

    /** SWAPs inserted by routing. */
    int numSwaps = 0;

    /** 1q gate count per device qubit (sparse: only active entries). */
    std::vector<int> gates1q; ///< Indexed by device qubit id.
    std::vector<int> gates2q; ///< Indexed by device qubit id.
};

/**
 * Greedy mapper + SWAP router.
 *
 * Initial mapping follows the subset's BFS order from its most central
 * node; every non-adjacent 2q gate is routed by swapping the first
 * operand along a shortest path until adjacency. Deterministic.
 */
class Mapper
{
  public:
    /**
     * @param device Full device coupling graph.
     */
    explicit Mapper(const Graph &device);

    /**
     * Map @p circuit onto @p subset (device qubit ids; must be a
     * connected set of size >= circuit.numQubits()).
     */
    MappedCircuit map(const Circuit &circuit,
                      const std::vector<int> &subset) const;

  private:
    const Graph &device_;
};

} // namespace qplacer

#endif // QPLACER_CIRCUITS_MAPPER_HPP
